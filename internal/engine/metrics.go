// Telemetry bridge: exposes the engine's existing counters, the
// degradation ladder, and per-shard balance as registry metrics.
//
// The engine's accounting predates the registry (atomic counters wired
// through Stats), so nearly everything here is a callback metric reading
// the same atomics the Stats snapshot reads — no double counting, no
// second increment discipline on the hot path, and a scrape costs the
// scraper, not the shards. The only metrics the hot path pays for
// directly are the per-shard scan-latency histograms (an Observe per
// scanned segment, see shard.run) and the flow-reassembly gauges
// (atomic adds inside flow.Assembler) — both enabled only when
// Config.Metrics is set.
package engine

import (
	"strconv"
	"time"

	"matchfilter/internal/flow"
	"matchfilter/internal/telemetry"
)

// registerMetrics wires the engine into reg. Called once from New when
// Config.Metrics is non-nil, after the shards exist.
func (e *Engine) registerMetrics(reg *telemetry.Registry) {
	// Dispatch-level counters.
	reg.CounterFunc("mfa_engine_skipped_frames_total",
		"Non-TCP frames seen by HandleFrame.",
		func() float64 { return float64(e.skipped.Load()) })
	reg.CounterFunc("mfa_engine_queue_drops_total",
		"Segments dropped because a shard queue was full (DropWhenFull policy).",
		func() float64 { return float64(e.queueDrops.Load()) })
	reg.CounterFunc("mfa_engine_hard_drops_total",
		"Segments shed at dispatch while at the hard degradation tier.",
		func() float64 { return float64(e.hardDrops.Load()) })

	// Aggregates over shard snapshots (the same mirrors Stats reads).
	sumSnap := func(f func(*flow.Stats) int64) func() float64 {
		return func() float64 {
			var n int64
			for _, s := range e.shards {
				n += f(s.snap.Load())
			}
			return float64(n)
		}
	}
	reg.CounterFunc("mfa_engine_packets_total",
		"TCP segments scanned.", sumSnap(func(a *flow.Stats) int64 { return a.Packets }))
	reg.CounterFunc("mfa_engine_payload_bytes_total",
		"Payload bytes delivered to matchers.", sumSnap(func(a *flow.Stats) int64 { return a.PayloadBytes }))
	reg.CounterFunc("mfa_engine_flows_total",
		"Flows ever created across shards.", sumSnap(func(a *flow.Stats) int64 { return a.FlowsTotal }))
	reg.CounterFunc("mfa_engine_out_of_order_total",
		"Out-of-order segments buffered for reassembly.", sumSnap(func(a *flow.Stats) int64 { return a.OutOfOrder }))
	reg.CounterFunc("mfa_engine_dropped_segments_total",
		"Segments dropped by reassembly (buffer overflow, stale data).", sumSnap(func(a *flow.Stats) int64 { return a.DroppedSegs }))
	reg.CounterFunc("mfa_engine_evicted_cap_total",
		"Flows LRU-evicted by the MaxFlows cap.", sumSnap(func(a *flow.Stats) int64 { return a.EvictedCap }))
	reg.CounterFunc("mfa_engine_evicted_idle_total",
		"Flows reclaimed by idle sweeps.", sumSnap(func(a *flow.Stats) int64 { return a.EvictedIdle }))
	reg.CounterFunc("mfa_engine_runners_reused_total",
		"Flows served from the runner pool instead of a fresh allocation.", sumSnap(func(a *flow.Stats) int64 { return a.RunnersReused }))
	reg.CounterFunc("mfa_engine_flow_restarts_total",
		"Flows restarted in place by a SYN on a live 4-tuple (connection reuse).", sumSnap(func(a *flow.Stats) int64 { return a.FlowRestarts }))
	reg.CounterFunc("mfa_engine_stale_runners_total",
		"Superseded-generation runners discarded instead of recycled.", sumSnap(func(a *flow.Stats) int64 { return a.StaleRunners }))
	reg.CounterFunc("mfa_engine_tenant_drops_total",
		"Segments refused inside shard assemblers by tenant policy (quota overrun or a tag that raced a delete).",
		sumSnap(func(a *flow.Stats) int64 { return a.TenantDrops }))
	reg.CounterFunc("mfa_engine_unknown_tenant_drops_total",
		"Tagged segments shed at dispatch because their tenant was not published.",
		func() float64 { return float64(e.tenantUnknown.Load()) })

	// Hot-reload state (reload.go). The per-generation live-flow gauges
	// (mfa_generation_live_flows) are registered as generations are
	// installed, in New and Reload.
	reg.GaugeFunc("mfa_generation",
		"Pattern generation new flows start on; bumps on every successful hot reload.",
		func() float64 { return float64(e.gen.Load().id) })

	reg.CounterFunc("mfa_engine_matches_total",
		"Confirmed matches delivered (exact at all times).",
		func() float64 {
			var n int64
			for _, s := range e.shards {
				n += s.matches.Load()
			}
			return float64(n)
		})

	// Occupancy gauges.
	reg.GaugeFunc("mfa_engine_queue_depth",
		"Segments queued across all shards right now.",
		func() float64 {
			n := 0
			for _, s := range e.shards {
				n += len(s.in)
			}
			return float64(n)
		})
	reg.GaugeFunc("mfa_engine_queue_capacity",
		"Total queue capacity (shards x per-shard depth).",
		func() float64 { return float64(e.queueCap) })
	reg.GaugeFunc("mfa_engine_flows_live",
		"Live flows across shards (snapshot-lagged; see mfa_reasm_live_flows for the exact gauge).",
		sumSnap(func(a *flow.Stats) int64 { return int64(a.Flows) }))
	reg.GaugeFunc("mfa_engine_shards",
		"Configured shard count.",
		func() float64 { return float64(len(e.shards)) })

	// Fault-isolation counters (shard.go).
	sumShard := func(f func(*shard) int64) func() float64 {
		return func() float64 {
			var n int64
			for _, s := range e.shards {
				n += f(s)
			}
			return float64(n)
		}
	}
	reg.CounterFunc("mfa_engine_poisoned_flows_total",
		"Flows quarantined after a matcher panic.", sumShard(func(s *shard) int64 { return s.poisoned.Load() }))
	reg.CounterFunc("mfa_engine_poisoned_drops_total",
		"Segments of quarantined flows dropped unscanned.", sumShard(func(s *shard) int64 { return s.poisonedDrops.Load() }))
	reg.CounterFunc("mfa_engine_shard_panics_total",
		"Recovered panics inside shards.", sumShard(func(s *shard) int64 { return s.panics.Load() }))
	reg.CounterFunc("mfa_engine_shard_restarts_total",
		"Assembler rebuilds after corruption beyond one flow.", sumShard(func(s *shard) int64 { return s.restarts.Load() }))
	reg.CounterFunc("mfa_engine_lost_flows_total",
		"Innocent live flows discarded by assembler rebuilds.", sumShard(func(s *shard) int64 { return s.lostFlows.Load() }))
	reg.CounterFunc("mfa_engine_unhealthy_drops_total",
		"Segments dropped by shards that exhausted their crash budget.", sumShard(func(s *shard) int64 { return s.unhealthyDrops.Load() }))
	reg.GaugeFunc("mfa_engine_unhealthy_shards",
		"Shards currently marked unhealthy (the /healthz and exit-code-3 predicate).",
		func() float64 {
			n := 0
			for _, s := range e.shards {
				if s.unhealthy.Load() {
					n++
				}
			}
			return float64(n)
		})

	// Stall watchdog (watchdog.go). Registered even when the watchdog is
	// disarmed so dashboards see stable zeros instead of absent series.
	reg.CounterFunc("mfa_guard_watchdog_fires_total",
		"Scan steps flagged by the stall watchdog (ran past -stall-deadline).",
		func() float64 {
			if e.dog == nil {
				return 0
			}
			return float64(e.dog.Fires())
		})
	reg.CounterFunc("mfa_guard_watchdog_wedges_total",
		"Stalls escalated to wedges (step still stuck past the wedge threshold).",
		func() float64 {
			if e.dog == nil {
				return 0
			}
			return float64(e.dog.Wedges())
		})
	reg.CounterFunc("mfa_guard_stalls_recovered_total",
		"Flagged scan steps that returned; their flow was quarantined.",
		sumShard(func(s *shard) int64 { return s.stallRecovered.Load() }))
	reg.CounterFunc("mfa_guard_wedge_drops_total",
		"Segments shed at dispatch because their shard was wedged mid-scan.",
		sumShard(func(s *shard) int64 { return s.wedgeDrops.Load() }))
	reg.GaugeFunc("mfa_guard_wedged_shards",
		"Shards currently stuck mid-scan past the wedge threshold.",
		func() float64 {
			n := 0
			for _, s := range e.shards {
				if s.wedged.Load() {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("mfa_engine_queued_bytes",
		"Non-leased payload bytes parked in shard queues (a memory-governor component).",
		func() float64 { return float64(e.queuedBytes.Load()) })

	// Degradation ladder (degrade.go).
	reg.GaugeFunc("mfa_engine_tier",
		"Current degradation tier: 0 normal, 1 soft, 2 hard.",
		func() float64 { return float64(e.tier.Load()) })
	for t := TierNormal; t <= TierHard; t++ {
		t := t
		label := telemetry.L("tier", t.String())
		reg.CounterFunc("mfa_engine_tier_enters_total",
			"Entries into each degradation tier.",
			func() float64 {
				e.tierMu.Lock()
				defer e.tierMu.Unlock()
				return float64(e.tierEnters[t])
			}, label)
		reg.CounterFunc("mfa_engine_tier_seconds_total",
			"Cumulative wall-clock seconds spent in each tier.",
			func() float64 {
				e.tierMu.Lock()
				defer e.tierMu.Unlock()
				d := e.tierTime[t]
				if Tier(e.tier.Load()) == t {
					d += time.Since(e.tierSince)
				}
				return d.Seconds()
			}, label)
	}

	// Per-shard balance and scan latency.
	for i, s := range e.shards {
		s := s
		label := telemetry.L("shard", strconv.Itoa(i))
		reg.CounterFunc("mfa_shard_packets_total",
			"Segments scanned by this shard.",
			func() float64 { return float64(s.snap.Load().Packets) }, label)
		reg.CounterFunc("mfa_shard_matches_total",
			"Matches confirmed by this shard.",
			func() float64 { return float64(s.matches.Load()) }, label)
		reg.GaugeFunc("mfa_shard_queue_depth",
			"Segments queued on this shard right now.",
			func() float64 { return float64(len(s.in)) }, label)
		s.scanHist = reg.Histogram("mfa_shard_scan_seconds",
			"Scan latency (reassembly + matching) of payload-bearing segments by shard; pure SYN/ACK/FIN bookkeeping is not timed.",
			telemetry.LatencyBuckets, label)
	}
}

// registerFlowGauges creates the shared reassembly gauges every shard's
// assembler feeds (exact, unlike the snapshot-lagged mfa_engine_flows_live).
func registerFlowGauges(reg *telemetry.Registry) *flow.Gauges {
	return &flow.Gauges{
		LiveFlows:       reg.Gauge("mfa_reasm_live_flows", "Live flows in shard reassembly tables (exact)."),
		PendingSegments: reg.Gauge("mfa_reasm_pending_segments", "Out-of-order segments buffered across shards."),
		BufferedBytes:   reg.Gauge("mfa_reasm_buffered_bytes", "Payload bytes held in out-of-order buffers."),
	}
}
