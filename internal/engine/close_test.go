package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"matchfilter/internal/flow"
	"matchfilter/internal/leakcheck"
	"matchfilter/internal/pcap"
)

// TestCloseRaceHandleSegment hammers the Handle/Close race: many
// producers dispatch segments while Close runs concurrently. The
// contract under -race: a send never lands on a closed channel (that
// would panic a producer), late sends return ErrClosed and nothing else,
// and every successfully dispatched segment is accounted for — scanned
// or counted in exactly one drop bucket.
func TestCloseRaceHandleSegment(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	const producers = 8
	const perProducer = 200
	for iter := 0; iter < 25; iter++ {
		e := New(Config{Shards: 4, QueueDepth: 16, DropWhenFull: true},
			func() flow.Runner { return m.NewRunner() }, nil)

		var sent atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				payload := []byte(fmt.Sprintf("producer %d says attack", p))
				for i := 0; i < perProducer; i++ {
					seg := pcap.Segment{
						Key: pcap.FlowKey{
							SrcIP:   0x0a000000 | uint32(p+1),
							DstIP:   0xc0a80101,
							SrcPort: uint16(20000 + p),
							DstPort: 80,
						},
						Seq:     uint32(i * len(payload)),
						Flags:   pcap.FlagACK,
						Payload: payload,
					}
					switch err := e.HandleSegment(seg); {
					case err == nil:
						sent.Add(1)
					case errors.Is(err, ErrClosed):
						return
					default:
						t.Errorf("HandleSegment: unexpected error %v", err)
						return
					}
				}
			}(p)
		}
		close(start)
		if err := e.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		wg.Wait()

		st := e.Stats()
		accounted := st.Packets + st.PoisonedDrops + st.UnhealthyDrops + st.QueueDrops + st.HardDrops
		if accounted != sent.Load() {
			t.Fatalf("iter %d: %d successful sends but %d accounted (packets=%d queue=%d hard=%d)",
				iter, sent.Load(), accounted, st.Packets, st.QueueDrops, st.HardDrops)
		}
	}
}

// TestCloseRaceHandleFrame is the same race through the frame-decode
// entry point, plus concurrent Close and CloseContext callers: all
// closers must return without panic and agree the engine drained.
func TestCloseRaceHandleFrame(t *testing.T) {
	leakcheck.Check(t)
	m := buildMFA(t, "attack")
	key := pcap.FlowKey{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 20000, DstPort: 80}
	payload := []byte("frame-path attack frame-path")

	for iter := 0; iter < 10; iter++ {
		e := New(Config{Shards: 2, QueueDepth: 8, DropWhenFull: true},
			func() flow.Runner { return m.NewRunner() }, nil)

		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					frame := pcap.EncodeTCP(key, uint32(i*len(payload)), pcap.FlagACK, payload)
					if err := e.HandleFrame(frame); err != nil {
						if errors.Is(err, ErrClosed) {
							return
						}
						t.Errorf("HandleFrame: unexpected error %v", err)
						return
					}
				}
			}(p)
		}
		// Two concurrent closers, one with a deadline: both must return
		// cleanly (idempotent close, no double-close panic).
		closeErrs := make(chan error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); <-start; closeErrs <- e.Close() }()
		go func() {
			defer wg.Done()
			<-start
			closeErrs <- e.CloseContext(context.Background())
		}()
		close(start)
		wg.Wait()
		for i := 0; i < 2; i++ {
			if err := <-closeErrs; err != nil {
				t.Fatalf("closer %d: %v", i, err)
			}
		}
		for _, d := range e.DrainProgress() {
			if !d.Done || d.Queued != 0 {
				t.Fatalf("shard %d not drained after Close: %+v", d.Shard, d)
			}
		}
	}
}
