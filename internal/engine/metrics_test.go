package engine

import (
	"bytes"
	"errors"
	"io"
	"strconv"
	"testing"

	"matchfilter/internal/faultinject"
	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/telemetry"
)

// TestTierGaugeTracksLadder drives the soft/hard watermark ladder the
// way fault_test.go does — a stalled shard filling its bounded queue —
// and asserts at every rung that the telemetry gauge, the tier-enter
// counters, and engine.Stats agree. The gauge is the live serving
// signal; Stats is the source of truth; they must never diverge.
func TestTierGaugeTracksLadder(t *testing.T) {
	reg := telemetry.NewRegistry()
	gate := make(chan struct{})
	e := New(Config{Shards: 1, QueueDepth: 8, Metrics: reg},
		func() flow.Runner { return faultinject.Stall(gate, faultinject.Discard) }, nil)
	k := pcap.FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}

	tierGauge := func() Tier {
		return Tier(int32(reg.Snapshot().Value("mfa_engine_tier")))
	}
	enters := func(tier Tier) float64 {
		m, ok := reg.Snapshot().Get("mfa_engine_tier_enters_total", telemetry.L("tier", tier.String()))
		if !ok {
			t.Fatalf("no tier_enters series for %v", tier)
		}
		return m.Value
	}

	if got := tierGauge(); got != TierNormal {
		t.Fatalf("initial tier gauge = %v, want normal", got)
	}

	// Wedge the shard and push until the hard watermark trips (dispatch
	// then drops instead of blocking, so this loop cannot strand).
	const total = 40
	for i := 0; i < total; i++ {
		if err := e.HandleSegment(pcap.Segment{Key: k, Seq: uint32(1 + i), Flags: pcap.FlagACK, Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Tier != TierHard {
		t.Fatalf("Stats.Tier = %v with a wedged full queue, want hard", st.Tier)
	}
	if got := tierGauge(); got != TierHard {
		t.Errorf("tier gauge = %v while Stats.Tier = %v", got, st.Tier)
	}
	for tier := TierNormal; tier <= TierHard; tier++ {
		if got, want := enters(tier), float64(st.TierEnters[tier]); got != want {
			t.Errorf("tier_enters_total{tier=%q} = %v, Stats.TierEnters = %v", tier, got, want)
		}
	}
	if hd := reg.Snapshot().Value("mfa_engine_hard_drops_total"); hd != float64(st.HardDrops) || hd == 0 {
		t.Errorf("hard_drops_total = %v, Stats.HardDrops = %d (want equal, nonzero)", hd, st.HardDrops)
	}

	// Unwedge and drain: the ladder steps back down and the gauge follows.
	close(gate)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Tier != TierNormal {
		t.Fatalf("Stats.Tier = %v after drain, want normal", st.Tier)
	}
	if got := tierGauge(); got != TierNormal {
		t.Errorf("tier gauge = %v after drain, want normal", got)
	}
	for tier := TierNormal; tier <= TierHard; tier++ {
		if got, want := enters(tier), float64(st.TierEnters[tier]); got != want {
			t.Errorf("after drain: tier_enters_total{tier=%q} = %v, Stats.TierEnters = %v", tier, got, want)
		}
	}
	// Time spent at the hard tier must be accounted in the seconds
	// counter too (Stats proved TierTime > 0 in fault_test.go).
	hardSecs, ok := reg.Snapshot().Get("mfa_engine_tier_seconds_total", telemetry.L("tier", "hard"))
	if !ok || hardSecs.Value <= 0 {
		t.Errorf("tier_seconds_total{tier=hard} = %+v, want > 0", hardSecs)
	}
}

// TestMetricsMirrorStats scans real traffic through an instrumented
// engine and checks the bridged counters, the exact reassembly gauges,
// the per-shard histograms, and the event ring against the final (exact)
// Stats snapshot.
func TestMetricsMirrorStats(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewEventRing(16)
	m := buildMFA(t, "attack.*payload", "needle")
	capture := interleavedCapture(t, 6, 2<<10, []string{"attack", "payload", "needle"})

	e := New(Config{Shards: 4, QueueDepth: 256, Metrics: reg, Events: ring},
		func() flow.Runner { return m.NewRunner() }, nil)
	feedCapture(t, e, capture)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"mfa_engine_packets_total":       float64(st.Packets),
		"mfa_engine_payload_bytes_total": float64(st.PayloadBytes),
		"mfa_engine_matches_total":       float64(st.Matches),
		"mfa_engine_flows_total":         float64(st.FlowsTotal),
		"mfa_engine_queue_depth":         0,
		"mfa_engine_unhealthy_shards":    0,
		"mfa_engine_tier":                float64(st.Tier),
	} {
		if got := snap.Value(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if st.Matches == 0 {
		t.Fatal("trace produced no matches; test is vacuous")
	}

	// Per-shard series must sum to the aggregate and match ShardPackets.
	// Histograms observe only payload-bearing segments, so their counts
	// sum to the capture's payload-segment total, bounded per shard by
	// that shard's packet count.
	var histTotal uint64
	for i := range st.ShardPackets {
		ms, ok := snap.Get("mfa_shard_packets_total", telemetry.L("shard", strconv.Itoa(i)))
		if !ok || ms.Value != float64(st.ShardPackets[i]) {
			t.Errorf("shard_packets_total{shard=%d} = %+v, want %d", i, ms, st.ShardPackets[i])
		}
		h, ok := snap.Get("mfa_shard_scan_seconds", telemetry.L("shard", strconv.Itoa(i)))
		if !ok || h.Hist == nil {
			t.Fatalf("no scan histogram for shard %d", i)
		}
		if h.Hist.Count > uint64(st.ShardPackets[i]) {
			t.Errorf("scan histogram count for shard %d = %d > shard packets %d",
				i, h.Hist.Count, st.ShardPackets[i])
		}
		histTotal += h.Hist.Count
	}
	if want := countPayloadSegments(t, capture); histTotal != want {
		t.Errorf("scan histogram observations = %d, want %d (one per payload-bearing segment)",
			histTotal, want)
	}

	// Reassembly gauges: after Close every flow was torn down or is
	// still live; live flows stay in the gauge.
	if got := snap.Value("mfa_reasm_live_flows"); got != float64(st.FlowsLive) {
		t.Errorf("reasm_live_flows = %v, Stats.FlowsLive = %d", got, st.FlowsLive)
	}

	// Every confirmed match landed in the ring (ring capacity 16 may
	// truncate the tail but Total is exact).
	if ring.Total() != st.Matches {
		t.Errorf("event ring Total = %d, Stats.Matches = %d", ring.Total(), st.Matches)
	}
	tail := ring.Tail(0)
	if len(tail) == 0 {
		t.Fatal("event ring empty")
	}
	for _, ev := range tail {
		if ev.Flow == "" || ev.Pattern == 0 {
			t.Errorf("malformed event: %+v", ev)
		}
	}

	// The exposition path renders without error.
	if err := snap.WritePrometheus(discardWriter{}); err != nil {
		t.Errorf("WritePrometheus: %v", err)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestMetricsScrapeDuringScan scrapes the registry concurrently with a
// live scan — the reader-never-perturbs-writer contract under -race.
func TestMetricsScrapeDuringScan(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := buildMFA(t, "attack.*payload")
	capture := interleavedCapture(t, 4, 4<<10, []string{"attack", "payload"})

	e := New(Config{Shards: 2, QueueDepth: 64, Metrics: reg, Events: telemetry.NewEventRing(8)},
		func() flow.Runner { return m.NewRunner() }, nil)
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			snap := reg.Snapshot()
			_ = snap.WritePrometheus(discardWriter{})
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	feedCapture(t, e, capture)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-scraped
	st := e.Stats()
	if got := reg.Snapshot().Value("mfa_engine_packets_total"); got != float64(st.Packets) {
		t.Errorf("post-close packets_total = %v, want %d", got, st.Packets)
	}
}

// countPayloadSegments decodes a capture and counts the TCP segments
// carrying payload — the segments the scan histograms time.
func countPayloadSegments(t *testing.T, capture []byte) uint64 {
	t.Helper()
	pr, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var n uint64
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		seg, err := pcap.DecodeTCP(pkt.Data)
		if err != nil {
			continue
		}
		if len(seg.Payload) > 0 {
			n++
		}
	}
}

// feedCapture pumps a raw pcap byte capture through the engine.
func feedCapture(t *testing.T, e *Engine, capture []byte) {
	t.Helper()
	pr, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	for {
		pkt, err := pr.Next()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := e.HandleFrame(pkt.Data); err != nil {
			t.Fatal(err)
		}
	}
}
