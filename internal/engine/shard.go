// Shard worker loop and fault supervision.
//
// Each shard goroutine is a supervisor around its flow.Assembler. The
// failure model follows from the paper's flow independence: per-flow
// matching state is a tiny private (q, m) context, so a panic raised
// while scanning one flow's bytes implicates only that flow — the
// assembler's shared structures (flow map, LRU list) are never
// mid-mutation at the points user-supplied matcher code runs. Recovery
// is therefore two-tier:
//
//  1. Quarantine: the offending flow's context is excised (its runner is
//     not recycled — the state is suspect) and its key is blacklisted, so
//     later segments of the same flow are drop-counted instead of
//     re-triggering the fault. All other flows on the shard keep their
//     exact match state.
//  2. Rebuild: if excision itself panics, the assembler's invariants are
//     broken beyond one flow; the shard discards it, counts the lost
//     flows, and rebuilds a fresh assembler, preserving cumulative
//     counters across the swap.
//
// A shard that keeps panicking is burning CPU on a hostile input or a
// real matcher bug; after CrashBudget recovered panics it is marked
// unhealthy and its segments are drop-counted (never crashing the
// engine), keeping the other shards' service intact.
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
	"matchfilter/internal/telemetry"
)

// queued is one dispatched segment riding a shard queue together with
// the lease on its payload buffer (nil for ordinarily-allocated
// payloads). The shard releases the lease once the segment has been
// consumed — scanned or drop-counted — at which point the assembler has
// copied any bytes it still needs.
type queued struct {
	seg   pcap.Segment
	owner pcap.Owner
}

// shard is one goroutine's private scanning lane.
type shard struct {
	idx int
	in  chan queued
	asm *flow.Assembler
	// rebuild constructs a fresh assembler wired to this shard's match
	// counter — the recovery path of last resort.
	rebuild func() *flow.Assembler
	// base accumulates counters from assemblers discarded by rebuilds so
	// published stats stay monotonic across a restart.
	base flow.Stats
	// quarantined holds poisoned flow keys; only the shard goroutine
	// touches it.
	quarantined map[pcap.FlowKey]struct{}

	// Batched lockstep scanning (Config.BatchFlows, DESIGN.md §18).
	// batching is set when the assembler defers in-order payload into a
	// flow.Batcher; held parks the leased buffers of deferred segments
	// until the flush has scanned them (the batcher references the
	// payload bytes until then). Both are goroutine-private.
	batching bool
	held     []pcap.Owner

	// Hot-reload plumbing (reload.go): genCmd holds the newest pending
	// generation swap (applied on the shard goroutine before the next
	// segment); wake nudges an idle shard so a swap is not stuck behind
	// a quiet queue.
	genCmd atomic.Pointer[genCommand]
	wake   chan struct{}

	// Tenant-command plumbing (tenant.go): unlike the newest-wins reload
	// slot, commands for different tenants must all arrive, so they queue
	// in a list; tenantPending keeps the hot path to one atomic load.
	tenantMu      sync.Mutex
	tenantCmds    []tenantCmd
	tenantPending atomic.Bool

	// matches is updated on every confirmed match; snap mirrors the
	// assembler's counters every statsEvery segments and at exit, so
	// outside observers never touch the assembler itself.
	matches atomic.Int64
	snap    atomic.Pointer[flow.Stats]

	// scanHist, when non-nil, observes per-segment scan latency
	// (reassembly + matching). Set before the shard goroutine starts
	// (engine.New registers metrics first), read only by the goroutine.
	scanHist *telemetry.Histogram
	// evClock makes the run loop read the clock once per segment into
	// evNano, which the match callback uses to stamp ring events —
	// match-dense segments then cost one clock read, not one per match.
	// Both fields stay on the shard goroutine (set before start / the
	// match callback runs inside process).
	evClock bool
	evNano  int64

	// processed counts segments consumed from the queue (scanned or
	// drop-counted); with len(in) it gives drain progress. exited flips
	// when the goroutine returns.
	processed atomic.Int64
	exited    atomic.Bool

	// Supervision counters.
	panics         atomic.Int64
	poisoned       atomic.Int64
	poisonedDrops  atomic.Int64
	restarts       atomic.Int64
	lostFlows      atomic.Int64
	unhealthy      atomic.Bool
	unhealthyDrops atomic.Int64

	// Stall-watchdog heartbeat (watchdog.go). hb arms it (set before
	// the goroutine starts). hbSeq/hbStart follow the guard.Target
	// protocol — the writer stores start=0, then seq=n+1, then
	// start=now, so the watchdog can never blame a fresh step for an
	// old step's age. stalledSeq is the step the watchdog flagged (the
	// shard checks it when the step returns and quarantines the flow);
	// wedged flips when the step outlives WedgeAfter, making dispatch
	// shed this shard's traffic into wedgeDrops. stallRecovered counts
	// flagged steps that did return.
	hb             bool
	hbSeq          atomic.Int64
	hbStart        atomic.Int64
	stalledSeq     atomic.Int64
	wedged         atomic.Bool
	stallRecovered atomic.Int64
	wedgeDrops     atomic.Int64
}

// statsEvery is how often (in segments) a shard refreshes its published
// stats snapshot. Snapshots are therefore at most this stale while the
// engine runs; Close publishes a final exact snapshot.
const statsEvery = 64

func (s *shard) publish() {
	st := s.asm.Stats()
	st.Packets += s.base.Packets
	st.PayloadBytes += s.base.PayloadBytes
	st.OutOfOrder += s.base.OutOfOrder
	st.DroppedSegs += s.base.DroppedSegs
	st.SkippedFrames += s.base.SkippedFrames
	st.FlowsTotal += s.base.FlowsTotal
	st.EvictedCap += s.base.EvictedCap
	st.EvictedIdle += s.base.EvictedIdle
	st.RunnersReused += s.base.RunnersReused
	st.FlowRestarts += s.base.FlowRestarts
	st.StaleRunners += s.base.StaleRunners
	st.TenantDrops += s.base.TenantDrops
	s.snap.Store(&st)
}

// batchBurst bounds how many already-queued segments a batching shard
// consumes per lockstep window before it flushes. The bound keeps match
// latency and held-buffer count proportional to the queue's actual
// backlog, never unbounded.
const batchBurst = 256

// loopState is the run loop's per-shard mutable state, shared with step
// so the batched drain path can reuse the exact per-segment body.
type loopState struct {
	normalBuf   int
	degradedBuf int
	appliedTier Tier
	n           int64
}

func (s *shard) run(e *Engine) {
	defer func() {
		s.exited.Store(true)
		s.publish()
		e.wg.Done()
	}()
	ls := &loopState{normalBuf: s.asm.MaxBuffered(), appliedTier: TierNormal}
	ls.degradedBuf = ls.normalBuf / 8
	if ls.degradedBuf < 4 {
		ls.degradedBuf = 4
	}
	for {
		var q queued
		var ok bool
		select {
		case q, ok = <-s.in:
		case <-s.wake:
			// Generation swap on an otherwise idle shard: apply it now
			// rather than when the next segment happens to arrive, so a
			// reload's gauges and reset policy take effect promptly
			// engine-wide. The batch is always empty here — every lockstep
			// window flushes before the loop blocks again.
			s.applyGeneration(e)
			s.applyTenantCmds()
			continue
		}
		if !ok {
			return
		}
		s.step(e, q, ls)
		if !s.batching {
			continue
		}
		// Batched lockstep window: the blocking receive above proved the
		// queue has traffic, so drain whatever else it already holds
		// (bounded) — each payload-bearing segment defers its scan into
		// the batcher — then flush once, stepping all those flows'
		// automata in lockstep. An empty queue degrades to a one-segment
		// window: flush-per-segment, i.e. the sequential path.
		closed := false
		for i := 0; i < batchBurst && !closed; i++ {
			select {
			case q, ok = <-s.in:
				if !ok {
					closed = true
					break
				}
				s.step(e, q, ls)
			default:
				closed = true
			}
		}
		s.flushBatch(e)
		for i, o := range s.held {
			release(o)
			s.held[i] = nil
		}
		s.held = s.held[:0]
		if !ok {
			return
		}
	}
}

// step consumes one dequeued segment: accounting, supervision gates,
// degradation reactions, the scan itself (deferred into the batcher when
// batching) and the periodic sweeps.
func (s *shard) step(e *Engine, q queued, ls *loopState) {
	cfg := &e.cfg
	seg := q.seg
	if q.owner == nil && len(seg.Payload) > 0 {
		// Withdraw what dispatch charged to the queued-bytes account
		// (leased payloads are accounted by their arena instead).
		e.queuedBytes.Add(-int64(len(seg.Payload)))
	}
	// Apply a pending swap before scanning, so every segment
	// dispatched after Reload returned is scanned post-swap (a flow
	// it creates starts on the new generation). The swap paths flush
	// the batch themselves (flow.setTenantGen), so deferred work never
	// crosses a generation boundary.
	if s.genCmd.Load() != nil {
		s.applyGeneration(e)
	}
	if s.tenantPending.Load() {
		s.applyTenantCmds()
	}
	ls.n++
	if ls.n%statsEvery == 0 {
		s.publish()
		// Shards re-evaluate pressure too, so the ladder steps back
		// down as queues drain even when dispatch has gone quiet.
		e.evalPressure()
	}
	s.processed.Add(1)
	if s.wedged.Load() {
		// This goroutine is demonstrably live — it is executing the
		// loop — so a wedge mark here is residue of the narrow race
		// where the watchdog's escalation landed just as the stuck
		// step returned (recoverStall clears the mark in the normal
		// order). Lift it before the unhealthy gate below can drop
		// scannable work.
		s.wedged.Store(false)
		if s.panics.Load() < int64(e.cfg.CrashBudget) {
			s.unhealthy.Store(false)
		}
	}
	if s.unhealthy.Load() {
		s.unhealthyDrops.Add(1)
		release(q.owner)
		return
	}
	if _, bad := s.quarantined[seg.Key]; bad {
		s.poisonedDrops.Add(1)
		release(q.owner)
		return
	}
	if tier := Tier(e.tier.Load()); tier != ls.appliedTier {
		if tier >= TierSoft && ls.appliedTier == TierNormal {
			// Entering degradation: shed reassembly memory now and
			// sweep idle flows aggressively.
			s.asm.SetMaxBuffered(ls.degradedBuf)
			s.asm.EvictIdle(cfg.DegradedIdleAfter)
		} else if tier == TierNormal {
			s.asm.SetMaxBuffered(ls.normalBuf)
		}
		ls.appliedTier = tier
	}
	// Only payload-bearing segments are timed: they are the ones that
	// feed the matcher (and the only ones that can raise a match
	// event), while pure SYN/ACK/FIN bookkeeping would just pile
	// sub-microsecond noise into the lowest bucket and pay two clock
	// reads for it. Under batching the deferred scan is timed by
	// flushBatch instead; this still covers reassembly plus any inline
	// fallbacks (self-flushes, lifecycle flushes) HandleSegment runs.
	// Heartbeat for the stall watchdog: start=0, seq=n+1, start=now
	// (the order the watchdog's race-free read depends on). Published
	// only for payload-bearing segments — they are the ones that run
	// matcher code and can stall.
	var hseq int64
	if s.hb && len(seg.Payload) > 0 {
		s.hbStart.Store(0)
		hseq = s.hbSeq.Add(1)
		s.hbStart.Store(time.Now().UnixNano())
	}
	if len(seg.Payload) > 0 && (s.scanHist != nil || s.evClock) {
		t0 := time.Now()
		if s.evClock {
			s.evNano = t0.UnixNano()
		}
		s.process(e, seg)
		if s.scanHist != nil {
			s.scanHist.ObserveDuration(time.Since(t0))
		}
	} else {
		s.process(e, seg)
	}
	if hseq != 0 {
		s.hbStart.Store(0)
		if s.stalledSeq.Load() == hseq {
			// The watchdog flagged this very step while it ran: the
			// flow wedged the shard past the deadline and cannot be
			// trusted again.
			s.recoverStall(e, seg.Key)
		}
	}
	if s.batching && q.owner != nil {
		// The payload may now sit in the batcher waiting for the flush,
		// so the leased buffer cannot go back to its arena yet; run's
		// drain loop releases it after flushBatch. (Held even when this
		// particular segment was scanned inline — ownership tracking per
		// byte would cost more than the short extra hold.)
		s.held = append(s.held, q.owner)
	} else {
		// The scan is over and the assembler copied anything it buffered
		// (out-of-order payloads are duplicated at buffering time), so
		// the leased frame buffer can go back to its arena. process
		// recovers its own panics, so this release runs on the poisoned
		// path too.
		release(q.owner)
	}
	idleAfter, sweepEvery := cfg.IdleAfter, cfg.SweepEvery
	if ls.appliedTier >= TierSoft {
		idleAfter = cfg.DegradedIdleAfter
		if sweepEvery = cfg.SweepEvery / 8; sweepEvery < 1 {
			sweepEvery = 1
		}
	}
	if idleAfter > 0 && ls.n%sweepEvery == 0 {
		s.asm.EvictIdle(idleAfter)
	}
	// A degraded engine must be able to step back down without new
	// dispatches: when this shard's queue runs dry, re-check pressure.
	if ls.appliedTier != TierNormal && len(s.in) == 0 {
		e.evalPressure()
	}
}

// process scans one segment under the shard's panic supervisor.
func (s *shard) process(e *Engine, seg pcap.Segment) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.panics.Add(1)
		key := seg.Key
		if k, ok := s.asm.BatchScanning().(pcap.FlowKey); ok {
			// The panic surfaced from a deferred lockstep flush that
			// HandleSegment itself triggered (a full batch self-flushing,
			// or a FIN/restart flushing before a runner lifecycle event) —
			// blame the flow whose match callback was running, not the
			// segment that merely pulled the trigger.
			key = k
		}
		s.quarantined[key] = struct{}{}
		s.poisoned.Add(1)
		s.excise(key)
		s.publish()
		if s.panics.Load() >= int64(e.cfg.CrashBudget) {
			s.unhealthy.Store(true)
		}
	}()
	s.asm.HandleSegment(seg)
}

// flushBatch scans every deferred payload of the current lockstep window
// under the same supervision a single segment gets: panic quarantine
// (attributed through the batcher's Scanning tag), stall heartbeat, and
// the scan-latency histogram (one observation for the whole window — the
// per-flow split does not exist once flows step in lockstep).
func (s *shard) flushBatch(e *Engine) {
	if s.asm.BatchLen() == 0 {
		return
	}
	var hseq int64
	if s.hb {
		s.hbStart.Store(0)
		hseq = s.hbSeq.Add(1)
		s.hbStart.Store(time.Now().UnixNano())
	}
	var t0 time.Time
	if s.scanHist != nil || s.evClock {
		t0 = time.Now()
		if s.evClock {
			s.evNano = t0.UnixNano()
		}
	}
	key, attributed := s.flushScan(e)
	if s.scanHist != nil {
		s.scanHist.ObserveDuration(time.Since(t0))
	}
	if hseq != 0 {
		s.hbStart.Store(0)
		if s.stalledSeq.Load() == hseq {
			if attributed {
				// The flush both stalled and panicked; the panic already
				// named the flow, reuse it for the stall quarantine.
				s.recoverStall(e, key)
			} else {
				// The whole window outlived the deadline but completed
				// without naming one offender (the batcher clears its
				// Scanning tag on normal completion), so no flow can be
				// quarantined; count the recovery and lift the wedge —
				// this goroutine is demonstrably live.
				s.stallRecovered.Add(1)
				e.lastStallRecovery.Store(time.Now().UnixNano())
				if s.wedged.Swap(false) && s.panics.Load() < int64(e.cfg.CrashBudget) {
					s.unhealthy.Store(false)
				}
				s.publish()
			}
		}
	}
}

// flushScan runs the deferred flush under a recover mirroring process's:
// the batcher empties itself even when a callback panics and keeps the
// offending flow's tag readable, so the shard can quarantine exactly the
// poisoned flow while every other batched flow's written-back state
// stays good.
func (s *shard) flushScan(e *Engine) (key pcap.FlowKey, attributed bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.panics.Add(1)
		if k, ok := s.asm.BatchScanning().(pcap.FlowKey); ok {
			key, attributed = k, true
			s.quarantined[k] = struct{}{}
			s.poisoned.Add(1)
			s.excise(k)
		}
		s.publish()
		if s.panics.Load() >= int64(e.cfg.CrashBudget) {
			s.unhealthy.Store(true)
		}
	}()
	s.asm.FlushBatch()
	return pcap.FlowKey{}, false
}

// recoverStall handles a scan step the watchdog flagged that has now
// returned: the offending flow joins the quarantine set through the
// same poison path a panic takes, and if the stall had escalated to a
// wedge, the shard re-enters service — the step did return, so the
// goroutine is live — unless its crash budget is already spent.
func (s *shard) recoverStall(e *Engine, key pcap.FlowKey) {
	if _, dup := s.quarantined[key]; !dup {
		// A step can both stall *and* panic; process already quarantined
		// the flow then, and the poison accounting must not double.
		s.quarantined[key] = struct{}{}
		s.poisoned.Add(1)
		s.excise(key)
	}
	s.stallRecovered.Add(1)
	e.lastStallRecovery.Store(time.Now().UnixNano())
	if s.wedged.Swap(false) && s.panics.Load() < int64(e.cfg.CrashBudget) {
		s.unhealthy.Store(false)
	}
	s.publish()
}

// excise removes a poisoned flow from the assembler. If the assembler is
// corrupt beyond that one flow — the excision itself panics — the shard
// rebuilds a fresh assembler, carrying the old counters into base and
// counting the innocent flows that lost their state.
func (s *shard) excise(key pcap.FlowKey) {
	defer func() {
		if recover() == nil {
			return
		}
		old := s.asm.Stats()
		s.lostFlows.Add(int64(old.Flows))
		old.Flows = 0
		s.addBase(old)
		// The discarded assembler's occupancy must leave any shared
		// gauges; ReleaseGauges subtracts tracked contributions without
		// walking the (possibly corrupt) tables.
		s.asm.ReleaseGauges()
		s.asm = s.rebuild()
		s.restarts.Add(1)
	}()
	s.asm.DropFlow(key)
}

// addBase folds a discarded assembler's counters into the shard's base.
func (s *shard) addBase(st flow.Stats) {
	s.base.Packets += st.Packets
	s.base.PayloadBytes += st.PayloadBytes
	s.base.OutOfOrder += st.OutOfOrder
	s.base.DroppedSegs += st.DroppedSegs
	s.base.SkippedFrames += st.SkippedFrames
	s.base.FlowsTotal += st.FlowsTotal
	s.base.EvictedCap += st.EvictedCap
	s.base.EvictedIdle += st.EvictedIdle
	s.base.RunnersReused += st.RunnersReused
	s.base.FlowRestarts += st.FlowRestarts
	s.base.StaleRunners += st.StaleRunners
	s.base.TenantDrops += st.TenantDrops
}
