package engine

import (
	"sync"
	"testing"

	"matchfilter/internal/flow"
	"matchfilter/internal/pcap"
)

// deriveSegments turns fuzz bytes into a deterministic segment stream
// over nFlows flows: each control byte picks a payload length and an
// optional swap with the previous segment (out-of-order arrival), and
// per-flow sequence numbers advance by payload size so the streams are
// coherent. The same stream is fed to both scanners, so any derivation
// is fair game — the property is equivalence, not protocol validity.
func deriveSegments(data []byte, nFlows int) []pcap.Segment {
	var segs []pcap.Segment
	seqs := make([]uint32, nFlows)
	for i := 0; len(data) > 0; i++ {
		ctl := data[0]
		data = data[1:]
		n := int(ctl&0x3f) + 1
		if n > len(data) {
			n = len(data)
		}
		if n == 0 {
			break
		}
		fl := i % nFlows
		seg := pcap.Segment{
			Key: pcap.FlowKey{
				SrcIP:   0x0a000000 | uint32(fl+1),
				DstIP:   0xc0a80101,
				SrcPort: uint16(30000 + fl),
				DstPort: 80,
			},
			Seq:     seqs[fl],
			Flags:   pcap.FlagACK,
			Payload: data[:n],
		}
		data = data[n:]
		seqs[fl] += uint32(n)
		segs = append(segs, seg)
		if ctl&0x80 != 0 && len(segs) >= 2 {
			segs[len(segs)-1], segs[len(segs)-2] = segs[len(segs)-2], segs[len(segs)-1]
		}
	}
	return segs
}

// FuzzEngineSegments checks the acceptance property of the sharded
// engine against arbitrary traffic: for any segment stream, the
// concurrent engine's per-flow match sets are identical to a sequential
// assembler scanning the same segments.
func FuzzEngineSegments(f *testing.F) {
	m := buildMFA(f, "attack", `evil\.(exe|dll)`, `GET /[a-z]+`)
	newRunner := func() flow.Runner { return m.NewRunner() }

	f.Add([]byte("\x0aGET /etc attack\x0bevil.exe now\x85attack attack"), uint8(3))
	f.Add([]byte("\x01a\x01t\x01t\x01a\x01c\x01k"), uint8(1))
	f.Add([]byte{0x80, 'a', 0x81, 'b', 0x82, 'c'}, uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, nFlowsRaw uint8) {
		segs := deriveSegments(data, 1+int(nFlowsRaw%8))
		if len(segs) == 0 {
			return
		}

		var seq []Match
		asm := flow.NewAssembler(flow.Config{}, newRunner, func(mt flow.Match) { seq = append(seq, mt) })
		for _, s := range segs {
			asm.HandleSegment(s)
		}

		var mu sync.Mutex
		var conc []Match
		// Watermarks above 1.0 keep the degradation ladder disengaged:
		// ladder drops are correct behavior but would fail the
		// byte-equivalence check this fuzz target is about.
		e := New(Config{Shards: 4, QueueDepth: 64, SoftWatermark: 1.1, HardWatermark: 1.2}, newRunner, func(mt Match) {
			mu.Lock()
			conc = append(conc, mt)
			mu.Unlock()
		})
		for _, s := range segs {
			if err := e.HandleSegment(s); err != nil {
				t.Fatalf("HandleSegment: %v", err)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		want, got := flowMatches(seq), flowMatches(conc)
		if len(want) != len(got) {
			t.Fatalf("flows with matches: sequential %d, engine %d", len(want), len(got))
		}
		for k, w := range want {
			g := got[k]
			if len(g) != len(w) {
				t.Fatalf("flow %v: sequential %v, engine %v", k, w, g)
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("flow %v: sequential %v, engine %v", k, w, g)
				}
			}
		}
	})
}
