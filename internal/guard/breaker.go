// Circuit breaker for restartable dependencies.
//
// The input supervisor's original policy was a fixed restart budget:
// exhaust it and the source is abandoned for the life of the process.
// That conflates two very different failures — a source that is broken
// forever (a file that no longer parses) and one that is merely down
// for longer than the backoff ladder tolerates (a capture endpoint
// rebooting). The breaker replaces "dead forever" with the classic
// three-state machine:
//
//	closed     normal operation; failures count against a budget that
//	           a sustained healthy run refills.
//	open       the budget is spent; the dependency is left alone for a
//	           doubling, capped interval.
//	half-open  one probe is in flight; success closes the breaker,
//	           failure re-opens it at the next interval.
package guard

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit state.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for /statsz and metrics help text.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one breaker.
type BreakerConfig struct {
	// FailureBudget is how many failures the closed state tolerates
	// before opening. 0 means 8.
	FailureBudget int
	// OpenBase is the first open interval; each consecutive open
	// doubles it up to OpenMax. 0 means 10s (OpenBase) / 2m (OpenMax).
	OpenBase time.Duration
	OpenMax  time.Duration
	// HealthyAfter is how long a run must last for the failure budget
	// to refill. 0 means 30s.
	HealthyAfter time.Duration
}

func (c *BreakerConfig) setDefaults() {
	if c.FailureBudget <= 0 {
		c.FailureBudget = 8
	}
	if c.OpenBase <= 0 {
		c.OpenBase = 10 * time.Second
	}
	if c.OpenMax <= 0 {
		c.OpenMax = 2 * time.Minute
	}
	if c.OpenMax < c.OpenBase {
		c.OpenMax = c.OpenBase
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 30 * time.Second
	}
}

// Breaker is one circuit. The state field is atomic so observers
// (metrics callbacks, /statsz) read it without taking the mutex the
// transition logic uses; Healthy may fire from a timer goroutine while
// Failure runs on the supervisor goroutine.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	failures int
	interval time.Duration

	state  atomic.Int32
	opens  atomic.Int64
	probes atomic.Int64
	resets atomic.Int64
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.setDefaults()
	return &Breaker{cfg: cfg, interval: cfg.OpenBase}
}

// State reports the current circuit state.
func (b *Breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// Opens counts closed/half-open → open transitions.
func (b *Breaker) Opens() int64 { return b.opens.Load() }

// Probes counts open → half-open transitions.
func (b *Breaker) Probes() int64 { return b.probes.Load() }

// Resets counts budget refills earned by sustained healthy runs.
func (b *Breaker) Resets() int64 { return b.resets.Load() }

// Failure records one failed run that lasted ranFor, and returns the
// resulting state. When the state is BreakerOpen, wait is how long the
// caller must leave the dependency alone before calling Probe; it is
// zero otherwise. A run that lasted at least HealthyAfter first refills
// the budget — a source that served for minutes and then hiccuped is
// not the same as one crash-looping.
func (b *Breaker) Failure(ranFor time.Duration) (state BreakerState, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ranFor >= b.cfg.HealthyAfter {
		b.resetLocked()
	}
	b.failures++
	if BreakerState(b.state.Load()) == BreakerHalfOpen || b.failures > b.cfg.FailureBudget {
		wait = b.interval
		b.interval *= 2
		if b.interval > b.cfg.OpenMax {
			b.interval = b.cfg.OpenMax
		}
		b.state.Store(int32(BreakerOpen))
		b.opens.Add(1)
		return BreakerOpen, wait
	}
	return BreakerClosed, 0
}

// Probe moves an open breaker to half-open: the caller is about to try
// the dependency once. No-op in other states.
func (b *Breaker) Probe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if BreakerState(b.state.Load()) == BreakerOpen {
		b.state.Store(int32(BreakerHalfOpen))
		b.probes.Add(1)
	}
}

// Success records a run that ended cleanly: the breaker closes and the
// budget refills.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resetLocked()
}

// Healthy records that the current run has lasted HealthyAfter without
// failing: the breaker closes and the budget refills, so a later crash
// starts from a full budget. Safe to call from a timer goroutine.
func (b *Breaker) Healthy() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resetLocked()
}

func (b *Breaker) resetLocked() {
	if BreakerState(b.state.Load()) != BreakerClosed || b.failures > 0 {
		b.resets.Add(1)
	}
	b.state.Store(int32(BreakerClosed))
	b.failures = 0
	b.interval = b.cfg.OpenBase
}
