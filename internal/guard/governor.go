// Unified memory governor.
//
// Before this layer, three uncoordinated limits bounded the pipeline's
// memory: arena buffers grew with source burstiness, shard queues with
// their configured depth, and reassembly buffers with out-of-order
// traffic — each individually capped, but their *sum* unbounded. The
// governor is the single accountant: components register a usage
// callback (a few atomic loads each), the governor aggregates them
// against one byte ceiling, and two consumers read the result:
//
//   - The engine's degradation ladder folds Pressure() (usage/limit)
//     into its watermark signal, so memory pressure steps the engine
//     through soft/hard degradation exactly like queue pressure does.
//   - Producers call Admit before leasing payload buffers; Admit blocks
//     while usage sits above the pause threshold, so sources stop
//     pulling bytes off the wire before the allocator can OOM the
//     process. Pauses are counted and timed.
package guard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"matchfilter/internal/telemetry"
)

// GovernorConfig sizes the governor.
type GovernorConfig struct {
	// Limit is the memory ceiling in bytes. Required (> 0).
	Limit int64
	// PauseAt is the fraction of Limit at which Admit starts blocking
	// producers. 0 means 0.9 — leasing pauses before the ceiling so
	// in-flight work can land under it.
	PauseAt float64
	// Poll is how often a blocked Admit re-checks usage. 0 means 2ms.
	Poll time.Duration
}

func (c *GovernorConfig) setDefaults() {
	if c.PauseAt <= 0 || c.PauseAt > 1 {
		c.PauseAt = 0.9
	}
	if c.Poll <= 0 {
		c.Poll = 2 * time.Millisecond
	}
}

// component is one registered usage source.
type component struct {
	name string
	fn   func() int64
}

// Governor aggregates registered usage callbacks against one ceiling.
// All methods are safe for concurrent use; a nil *Governor is a valid
// no-op (Admit admits, Pressure is zero), so callers need not branch.
type Governor struct {
	cfg GovernorConfig

	mu    sync.Mutex // guards registration
	comps atomic.Pointer[[]component]

	pauses      atomic.Int64
	pausedNanos atomic.Int64
}

// NewGovernor creates a governor. Register components before exposing
// it to producers.
func NewGovernor(cfg GovernorConfig) *Governor {
	if cfg.Limit <= 0 {
		panic("guard: GovernorConfig.Limit is required")
	}
	cfg.setDefaults()
	g := &Governor{cfg: cfg}
	g.comps.Store(&[]component{})
	return g
}

// Register adds one usage component. fn must be cheap and safe to call
// from any goroutine (atomic loads, not table walks).
func (g *Governor) Register(name string, fn func() int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	next := append(append([]component{}, *g.comps.Load()...), component{name, fn})
	g.comps.Store(&next)
}

// Limit reports the configured ceiling in bytes.
func (g *Governor) Limit() int64 {
	if g == nil {
		return 0
	}
	return g.cfg.Limit
}

// Usage sums the registered components' current bytes.
func (g *Governor) Usage() int64 {
	if g == nil {
		return 0
	}
	var total int64
	for _, c := range *g.comps.Load() {
		total += c.fn()
	}
	return total
}

// Pressure is usage over limit — the signal the degradation ladder
// folds into its watermark comparison. It may exceed 1.0 transiently.
func (g *Governor) Pressure() float64 {
	if g == nil {
		return 0
	}
	p := float64(g.Usage()) / float64(g.cfg.Limit)
	if p < 0 {
		p = 0
	}
	return p
}

// overPause reports whether producers should be held at the gate.
func (g *Governor) overPause() bool {
	return float64(g.Usage()) >= g.cfg.PauseAt*float64(g.cfg.Limit)
}

// Admit blocks while usage sits above the pause threshold, re-checking
// every Poll, and returns when the producer may lease again. It returns
// ctx.Err() if the context ends first — the producer is shutting down
// and should stop producing rather than wait out the pressure.
func (g *Governor) Admit(ctx context.Context) error {
	if g == nil || !g.overPause() {
		return nil
	}
	g.pauses.Add(1)
	t0 := time.Now()
	defer func() { g.pausedNanos.Add(int64(time.Since(t0))) }()
	tick := time.NewTicker(g.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if !g.overPause() {
				return nil
			}
		}
	}
}

// GovernorStats is a point-in-time accounting snapshot.
type GovernorStats struct {
	LimitBytes int64
	UsageBytes int64
	Pressure   float64
	// Components maps each registered component to its current bytes.
	Components map[string]int64
	// Pauses counts Admit calls that had to block; PausedNanos is the
	// cumulative time producers spent blocked.
	Pauses      int64
	PausedNanos int64
}

// Stats snapshots the governor.
func (g *Governor) Stats() GovernorStats {
	if g == nil {
		return GovernorStats{}
	}
	st := GovernorStats{
		LimitBytes:  g.cfg.Limit,
		Pauses:      g.pauses.Load(),
		PausedNanos: g.pausedNanos.Load(),
		Components:  make(map[string]int64),
	}
	for _, c := range *g.comps.Load() {
		n := c.fn()
		st.Components[c.name] = n
		st.UsageBytes += n
	}
	st.Pressure = float64(st.UsageBytes) / float64(st.LimitBytes)
	return st
}

// RegisterMetrics exposes the governor on a telemetry registry under
// the mfa_guard_mem_* family. Call after every component is registered
// so the per-component series set is complete.
func (g *Governor) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("mfa_guard_mem_limit_bytes",
		"Unified memory ceiling (-max-memory).",
		func() float64 { return float64(g.cfg.Limit) })
	reg.GaugeFunc("mfa_guard_mem_usage_bytes",
		"Bytes currently accounted against the memory ceiling, all components.",
		func() float64 { return float64(g.Usage()) })
	reg.GaugeFunc("mfa_guard_mem_pressure",
		"Governor pressure: usage over limit (may transiently exceed 1).",
		func() float64 { return g.Pressure() })
	reg.CounterFunc("mfa_guard_mem_pauses_total",
		"Producer lease requests that blocked at the admission gate.",
		func() float64 { return float64(g.pauses.Load()) })
	reg.CounterFunc("mfa_guard_mem_paused_seconds_total",
		"Cumulative time producers spent paused by the admission gate.",
		func() float64 { return time.Duration(g.pausedNanos.Load()).Seconds() })
	for _, c := range *g.comps.Load() {
		c := c
		reg.GaugeFunc("mfa_guard_mem_component_bytes",
			"Bytes accounted by one governor component.",
			func() float64 { return float64(c.fn()) },
			telemetry.L("component", c.name))
	}
}
