// Stall watchdog: detects workers stuck inside one unit of work.
//
// A shard wedged mid-scan — a matcher looping in user code, a decorator
// blocked on a gate — is invisible from the outside until its queue
// backs up and the backpressure reaches producers. The watchdog makes
// the stall itself observable: each monitored target publishes a
// heartbeat of two atomics (a monotonically increasing step sequence
// and the wall-clock start of the step in progress, zero when idle),
// and one goroutine polls every heartbeat against two thresholds:
//
//	Deadline    the step is a *stall*: Stall(seq) fires once. The
//	            target is expected to remember the flagged sequence and
//	            quarantine the offending work when the step returns.
//	WedgeAfter  the step is still stuck: Wedge(seq) fires once. The
//	            target is expected to fail over — mark itself unhealthy,
//	            shed its traffic with accounting — because the step may
//	            never return.
//
// The protocol is race-clean without locks: the writer's order is
// start=0 (step done), seq=n+1, start=now (step begins), so a reader
// that observes seq=n+1 can only read start as 0 or the new timestamp,
// never a stale one — a fresh step is never blamed for an old step's
// age. Callbacks run on the watchdog goroutine and must not block.
package guard

import (
	"sync"
	"sync/atomic"
	"time"
)

// Target is one monitored worker.
type Target interface {
	// Beat reports the worker's heartbeat: the sequence number of the
	// step in progress and its start time in Unix nanoseconds. A zero
	// start means the worker is idle between steps.
	Beat() (seq, startNano int64)
	// Stall is called at most once per stuck step, when the step has
	// run past Deadline. seq identifies the step.
	Stall(seq int64)
	// Wedge is called at most once per stuck step, when the step has
	// run past WedgeAfter and the worker must be presumed lost.
	Wedge(seq int64)
}

// WatchdogConfig tunes the detector.
type WatchdogConfig struct {
	// Deadline is the stall threshold for one step. Required (> 0).
	Deadline time.Duration
	// WedgeAfter is the escalation threshold. 0 means 4×Deadline.
	WedgeAfter time.Duration
	// Poll is the heartbeat sampling interval. 0 means Deadline/4,
	// floored at one millisecond. Detection latency is at most
	// Deadline + Poll.
	Poll time.Duration
}

func (c *WatchdogConfig) setDefaults() {
	if c.WedgeAfter <= 0 {
		c.WedgeAfter = 4 * c.Deadline
	}
	if c.Poll <= 0 {
		c.Poll = c.Deadline / 4
	}
	if c.Poll < time.Millisecond {
		c.Poll = time.Millisecond
	}
}

// targetState is the watchdog's memory of one target between polls.
type targetState struct {
	seq     int64 // step the flags below refer to
	stalled bool
	wedged  bool
}

// Watchdog polls a set of Targets from one goroutine.
type Watchdog struct {
	cfg     WatchdogConfig
	targets []Target
	states  []targetState

	fires  atomic.Int64
	wedges atomic.Int64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewWatchdog starts a watchdog over targets. Stop must be called to
// release its goroutine. A zero Deadline panics: an unarmed watchdog is
// a configuration bug, not a policy.
func NewWatchdog(cfg WatchdogConfig, targets ...Target) *Watchdog {
	if cfg.Deadline <= 0 {
		panic("guard: WatchdogConfig.Deadline is required")
	}
	cfg.setDefaults()
	w := &Watchdog{
		cfg:     cfg,
		targets: targets,
		states:  make([]targetState, len(targets)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.run()
	return w
}

// Stop terminates the polling goroutine. Idempotent; returns once the
// goroutine has exited, so callers can assert goroutine hygiene.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Fires reports the stalls detected so far (one per stuck step).
func (w *Watchdog) Fires() int64 { return w.fires.Load() }

// Wedges reports the escalations so far (stuck steps past WedgeAfter).
func (w *Watchdog) Wedges() int64 { return w.wedges.Load() }

func (w *Watchdog) run() {
	defer close(w.done)
	tick := time.NewTicker(w.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-tick.C:
			w.poll(time.Now().UnixNano())
		}
	}
}

func (w *Watchdog) poll(now int64) {
	for i, t := range w.targets {
		seq, start := t.Beat()
		ts := &w.states[i]
		if seq != ts.seq {
			// A new step began since the last poll: any stall flags refer
			// to a step that already completed.
			ts.seq, ts.stalled, ts.wedged = seq, false, false
		}
		if start == 0 {
			continue // idle
		}
		age := time.Duration(now - start)
		if age >= w.cfg.Deadline && !ts.stalled {
			ts.stalled = true
			w.fires.Add(1)
			t.Stall(seq)
		}
		if age >= w.cfg.WedgeAfter && !ts.wedged {
			ts.wedged = true
			w.wedges.Add(1)
			t.Wedge(seq)
		}
	}
}
