package guard

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"matchfilter/internal/telemetry"
)

// fakeTarget is a hand-cranked heartbeat for watchdog tests.
type fakeTarget struct {
	seq, start atomic.Int64
	stalls     atomic.Int64
	wedges     atomic.Int64
	lastStall  atomic.Int64
	lastWedge  atomic.Int64
}

func (f *fakeTarget) Beat() (int64, int64) { return f.seq.Load(), f.start.Load() }
func (f *fakeTarget) Stall(seq int64)      { f.stalls.Add(1); f.lastStall.Store(seq) }
func (f *fakeTarget) Wedge(seq int64)      { f.wedges.Add(1); f.lastWedge.Store(seq) }

// begin follows the writer protocol: start=0, seq++, start=now.
func (f *fakeTarget) begin(at time.Time) int64 {
	f.start.Store(0)
	n := f.seq.Add(1)
	f.start.Store(at.UnixNano())
	return n
}

func (f *fakeTarget) finish() { f.start.Store(0) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWatchdogFiresOncePerStuckStep(t *testing.T) {
	ft := &fakeTarget{}
	w := NewWatchdog(WatchdogConfig{Deadline: 10 * time.Millisecond, WedgeAfter: 40 * time.Millisecond}, ft)
	defer w.Stop()

	seq := ft.begin(time.Now())
	waitFor(t, "stall fire", func() bool { return ft.stalls.Load() == 1 })
	if got := ft.lastStall.Load(); got != seq {
		t.Fatalf("Stall(seq) = %d, want %d", got, seq)
	}
	waitFor(t, "wedge fire", func() bool { return ft.wedges.Load() == 1 })
	// Stays stuck: neither callback fires again for the same step.
	time.Sleep(60 * time.Millisecond)
	if s, wd := ft.stalls.Load(), ft.wedges.Load(); s != 1 || wd != 1 {
		t.Fatalf("repeated callbacks for one step: stalls=%d wedges=%d", s, wd)
	}
	if w.Fires() != 1 || w.Wedges() != 1 {
		t.Fatalf("watchdog counters: fires=%d wedges=%d, want 1/1", w.Fires(), w.Wedges())
	}

	// A new step resets the per-step flags and can stall again.
	ft.begin(time.Now())
	waitFor(t, "second stall fire", func() bool { return ft.stalls.Load() == 2 })
}

func TestWatchdogIgnoresIdleAndFastSteps(t *testing.T) {
	ft := &fakeTarget{}
	w := NewWatchdog(WatchdogConfig{Deadline: 25 * time.Millisecond}, ft)
	defer w.Stop()

	// Fast steps: begin/finish well under the deadline, repeatedly.
	for i := 0; i < 20; i++ {
		ft.begin(time.Now())
		time.Sleep(time.Millisecond)
		ft.finish()
	}
	// Idle for several deadlines.
	time.Sleep(80 * time.Millisecond)
	if s := ft.stalls.Load(); s != 0 {
		t.Fatalf("false positive: %d stalls on fast/idle target", s)
	}
}

func TestWatchdogStopIsIdempotent(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{Deadline: time.Millisecond}, &fakeTarget{})
	w.Stop()
	w.Stop()
}

func TestGovernorAdmitBlocksOverThreshold(t *testing.T) {
	var usage atomic.Int64
	g := NewGovernor(GovernorConfig{Limit: 1000, PauseAt: 0.5, Poll: time.Millisecond})
	g.Register("test", usage.Load)

	// Under threshold: Admit returns immediately.
	usage.Store(400)
	if err := g.Admit(context.Background()); err != nil {
		t.Fatalf("Admit under threshold: %v", err)
	}
	if got := g.Stats().Pauses; got != 0 {
		t.Fatalf("pauses = %d, want 0", got)
	}

	// Over threshold: Admit blocks until usage falls.
	usage.Store(600)
	released := make(chan error, 1)
	go func() { released <- g.Admit(context.Background()) }()
	select {
	case <-released:
		t.Fatal("Admit returned while over threshold")
	case <-time.After(20 * time.Millisecond):
	}
	usage.Store(100)
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("Admit after pressure relief: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Admit did not return after pressure relief")
	}
	st := g.Stats()
	if st.Pauses != 1 || st.PausedNanos <= 0 {
		t.Fatalf("stats after pause: pauses=%d pausedNanos=%d", st.Pauses, st.PausedNanos)
	}
}

func TestGovernorAdmitHonoursContext(t *testing.T) {
	var usage atomic.Int64
	usage.Store(999)
	g := NewGovernor(GovernorConfig{Limit: 1000, PauseAt: 0.5, Poll: time.Millisecond})
	g.Register("test", usage.Load)

	ctx, cancel := context.WithCancel(context.Background())
	released := make(chan error, 1)
	go func() { released <- g.Admit(ctx) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-released:
		if err != context.Canceled {
			t.Fatalf("Admit on cancel = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Admit ignored context cancellation")
	}
}

func TestGovernorNilIsNoOp(t *testing.T) {
	var g *Governor
	if err := g.Admit(context.Background()); err != nil {
		t.Fatalf("nil Admit: %v", err)
	}
	if g.Pressure() != 0 || g.Usage() != 0 || g.Limit() != 0 {
		t.Fatal("nil governor reported non-zero state")
	}
	if st := g.Stats(); st.LimitBytes != 0 {
		t.Fatalf("nil Stats = %+v", st)
	}
}

func TestGovernorStatsAndMetrics(t *testing.T) {
	var a, b atomic.Int64
	a.Store(300)
	b.Store(200)
	g := NewGovernor(GovernorConfig{Limit: 1000})
	g.Register("arena", a.Load)
	g.Register("engine", b.Load)

	st := g.Stats()
	if st.UsageBytes != 500 || st.Components["arena"] != 300 || st.Components["engine"] != 200 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Pressure != 0.5 {
		t.Fatalf("pressure = %v, want 0.5", st.Pressure)
	}

	reg := telemetry.NewRegistry()
	g.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		"mfa_guard_mem_limit_bytes 1000",
		"mfa_guard_mem_usage_bytes 500",
		"mfa_guard_mem_pressure 0.5",
		`mfa_guard_mem_component_bytes{component="arena"} 300`,
		`mfa_guard_mem_component_bytes{component="engine"} 200`,
		"mfa_guard_mem_pauses_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{
		FailureBudget: 2,
		OpenBase:      10 * time.Millisecond,
		OpenMax:       25 * time.Millisecond,
		HealthyAfter:  time.Hour,
	})
	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}

	// Budget tolerates FailureBudget failures, then opens.
	for i := 0; i < 2; i++ {
		if st, wait := b.Failure(0); st != BreakerClosed || wait != 0 {
			t.Fatalf("failure %d: state=%v wait=%v", i, st, wait)
		}
	}
	st, wait := b.Failure(0)
	if st != BreakerOpen || wait != 10*time.Millisecond {
		t.Fatalf("open transition: state=%v wait=%v", st, wait)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}

	// Probe → half-open; a half-open failure re-opens with doubled wait.
	b.Probe()
	if b.State() != BreakerHalfOpen || b.Probes() != 1 {
		t.Fatalf("after probe: state=%v probes=%d", b.State(), b.Probes())
	}
	st, wait = b.Failure(0)
	if st != BreakerOpen || wait != 20*time.Millisecond {
		t.Fatalf("half-open failure: state=%v wait=%v", st, wait)
	}
	// Next open interval is capped at OpenMax.
	b.Probe()
	if _, wait = b.Failure(0); wait != 25*time.Millisecond {
		t.Fatalf("capped wait = %v, want 25ms", wait)
	}

	// A successful probe closes the breaker and refills the budget.
	b.Probe()
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("after success: state=%v", b.State())
	}
	if st, _ := b.Failure(0); st != BreakerClosed {
		t.Fatal("budget was not refilled by Success")
	}
	// And the open interval restarts from OpenBase.
	b.Failure(0)
	if st, wait := b.Failure(0); st != BreakerOpen || wait != 10*time.Millisecond {
		t.Fatalf("interval not reset: state=%v wait=%v", st, wait)
	}
}

func TestBreakerHealthyRunRefillsBudget(t *testing.T) {
	b := NewBreaker(BreakerConfig{
		FailureBudget: 1,
		OpenBase:      10 * time.Millisecond,
		HealthyAfter:  50 * time.Millisecond,
	})
	// Spend the budget with crash-loop failures.
	b.Failure(0)
	// A failure after a long healthy run refills first: it counts as
	// failure #1 against a fresh budget, so the breaker stays closed.
	if st, _ := b.Failure(time.Second); st != BreakerClosed {
		t.Fatalf("state after healthy-run failure = %v, want closed", st)
	}
	if b.Resets() == 0 {
		t.Fatal("healthy run did not count as a reset")
	}
	// Healthy() (the mid-run timer path) also refills.
	b.Failure(0) // budget spent again (failures=2 > 1 would open — check)
	b.Healthy()
	if st, _ := b.Failure(0); st != BreakerClosed {
		t.Fatalf("state after Healthy+failure = %v, want closed", st)
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", st, got, want)
		}
	}
}
