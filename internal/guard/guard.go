// Package guard closes the loop between failure detection and reaction
// across the serving pipeline: it is the resource-governance layer the
// rest of the stack plugs into rather than each package growing its own
// ad-hoc limits.
//
// The paper's flow model keeps per-flow matching state tiny precisely so
// a DPI engine can survive adversarial traffic; guard extends that
// posture from state size to liveness and memory. Three mechanisms, each
// usable on its own (DESIGN.md §16):
//
//   - Watchdog (watchdog.go): detects stalls. Workers publish a
//     lock-free heartbeat (scan sequence + start timestamp); a single
//     watchdog goroutine polls the heartbeats and fires callbacks when
//     one scan step runs past a deadline (stall) and again when it stays
//     stuck (wedge). The hot path pays two atomic stores per step and
//     takes no locks; all policy lives in the callbacks.
//   - Governor (governor.go): one memory accountant. Components
//     (arena leases, reassembly buffers, queue payloads) register usage
//     callbacks; the governor aggregates them against a single byte
//     ceiling, exposes the ratio as a pressure signal for the engine's
//     degradation ladder, and gates producers through Admit — sources
//     pause leasing before the process can be OOM-killed.
//   - Breaker (breaker.go): a closed/open/half-open circuit breaker for
//     restartable dependencies (input sources). Exhausting a failure
//     budget opens the breaker for a capped, doubling interval instead
//     of abandoning the dependency forever; a half-open probe re-enters
//     service, and a sustained healthy run restores the budget.
package guard
