// Package leakcheck is a hand-rolled goroutine-leak assertion for
// tests: snapshot the live goroutines at the start of a test, and at
// cleanup fail if any *new* goroutine running this project's code is
// still alive after a grace period.
//
// The filter is deliberately narrow — only goroutines whose stack
// mentions matchfilter/internal (excluding this package) count as
// leaks. Runtime helpers, testing harness goroutines, and net/http
// background pollers churn freely between snapshots and must not flake
// the suite. The grace period (3s, polled every 20ms) absorbs benign
// shutdown races: a Close that has signalled its workers but not yet
// been scheduled to reap them is not a leak.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// stacks returns the full goroutine dump.
func stacks() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, 2*len(buf))
	}
}

// goroutines parses a dump into id → stack body.
func goroutines() map[string]string {
	out := make(map[string]string)
	for _, g := range strings.Split(stacks(), "\n\n") {
		// Each block starts "goroutine N [state]:".
		rest, ok := strings.CutPrefix(g, "goroutine ")
		if !ok {
			continue
		}
		id, _, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		out[id] = g
	}
	return out
}

// interesting reports whether a leaked stack belongs to project code.
func interesting(stack string) bool {
	return strings.Contains(stack, "matchfilter/internal/") &&
		!strings.Contains(stack, "matchfilter/internal/leakcheck")
}

// Check snapshots the current goroutines and registers a cleanup that
// fails the test if new project goroutines outlive the test body.
//
//	func TestClose(t *testing.T) {
//	    leakcheck.Check(t)
//	    ...
//	}
func Check(t testing.TB) {
	t.Helper()
	before := goroutines()
	t.Cleanup(func() {
		var leaked []string
		deadline := time.Now().Add(3 * time.Second)
		for {
			leaked = leaked[:0]
			for id, stack := range goroutines() {
				if _, existed := before[id]; !existed && interesting(stack) {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d leaked goroutine(s):\n", len(leaked))
		for _, stack := range leaked {
			sb.WriteString("\n")
			sb.WriteString(stack)
			sb.WriteString("\n")
		}
		t.Error(sb.String())
	})
}
