// Package splitter implements the paper's Regex Splitter (Algorithm 1):
// it rewrites each input regex into a collection of simpler fragments plus
// the match-filter actions that reconstruct the original matches.
//
// Two decomposition patterns are applied, exactly as in §IV:
//
//	dot-star         .*A.*B{{n}}      →  .*A{{n'}} | .*B{{n}}
//	almost-dot-star  .*A[^X]*B{{n}}   →  .*A{{n'}} | .*[X]{{n''}} | .*B{{n}}
//
// with guard-bit chaining for regexes containing several separators. A
// decomposition is applied only when the safety conditions of the paper
// hold: no non-empty suffix of A is a prefix of B; for almost-dot-star,
// additionally no byte of X occurs anywhere in B or in a final position of
// A, and |X| is below the class-size threshold. Fragments of rules that
// fail the checks are left intact — correctness is never traded for size,
// at the cost of keeping some state explosion (§I-D).
package splitter

import (
	"fmt"

	"matchfilter/internal/filter"
	"matchfilter/internal/regexparse"
)

// DefaultMaxClassSize is the §IV-B threshold: if the negated class X of an
// almost-dot-star has this many bytes or more, the gap fragment .*[X]
// would fire on too much traffic and the decomposition is skipped.
const DefaultMaxClassSize = 128

// DefaultCounterThreshold is the minimum upper bound m of a bounded gap
// X{n,m} for the counter-register decomposition to apply. Small repeats
// expand to a handful of DFA states, cheaper than per-flow counter state
// and an extra filter event per occurrence.
const DefaultCounterThreshold = 8

// Rule is one input regex with the id its matches must report.
type Rule struct {
	Pattern *regexparse.Pattern
	RuleID  int32
}

// Fragment is one decomposed regex: a pattern for the DFA plus the
// internal match id (an element of Di) it reports.
type Fragment struct {
	Pattern    *regexparse.Pattern
	InternalID int32
	// RuleID is the original rule this fragment came from.
	RuleID int32
}

// Options tunes the splitter. The zero value is the paper's configuration.
type Options struct {
	// MaxClassSize overrides DefaultMaxClassSize when positive.
	MaxClassSize int
	// DisableDotStar turns off §IV-A decomposition.
	DisableDotStar bool
	// DisableAlmostDotStar turns off §IV-B decomposition. The HFA baseline
	// uses this: HASIC factors only plain dot-star history.
	DisableAlmostDotStar bool
	// DisableSafetyChecks skips the overlap and class analyses. It exists
	// only to demonstrate (in tests and ablations) the false matches the
	// checks prevent — never enable it in production.
	DisableSafetyChecks bool
	// EnableCounting turns on the counting-condition extension the
	// paper's §VI leaves as future work: gaps of the form .{n,} are
	// decomposed using filter position registers, provided the trailing
	// segment has a fixed length. Off by default so the baselines match
	// the published construction.
	EnableCounting bool
	// EnableCounters turns on the counter-register extension (DESIGN.md
	// §19): bounded gaps X{n,m} with finite m — full-alphabet .{n,m} or
	// classed [^Y]{n,m} — compile to filter counters instead of
	// duplication-expanded states, provided the trailing segment has a
	// fixed length. Off by default so the baselines match the published
	// construction.
	EnableCounters bool
	// CounterThreshold overrides DefaultCounterThreshold when positive:
	// bounded gaps with m below it stay duplication-expanded.
	CounterThreshold int
	// PrependAnchors restores the paper's §IV-C anchored handling: the
	// anchored start pattern is prepended (with a gap) to every later
	// fragment of an anchored rule. Semantically redundant — a fragment
	// firing in a flow whose start never matched finds its guard unset —
	// and it measurably inflates the fragment DFA, so it is off by
	// default; the ablation benchmarks quantify the difference.
	PrependAnchors bool
}

// Stats counts what the splitter did, for construction reports.
type Stats struct {
	RulesTotal         int
	RulesDecomposed    int
	DotStarSplits      int
	AlmostSplits       int
	CountingSplits     int
	RefusedOverlap     int
	RefusedInfix       int
	RefusedClassSize   int
	RefusedXInB        int
	RefusedXFinalInA   int
	RefusedCascade     int // rejected because a separator to the right was refused
	RefusedStructural  int // no top-level concat / empty segment
	RefusedVarLength   int // counting gap whose trailing segment has variable length
	CounterSplits      int // bounded gaps compiled to counter registers
	RefusedCounterXInB int // classed bounded gap whose forbidden class occurs in B
	RefusedCounterSpan int // bounded gap whose window exceeds filter.MaxCounterGap (or counter budget)
}

// Result is the splitter output: the fragment set for DFA construction,
// the per-internal-id filter actions, and the memory width w.
type Result struct {
	Fragments []Fragment
	Actions   []filter.Action // indexed by internal id; entry 0 reserved
	MemBits   int
	// NumRegs is the number of position registers the counting extension
	// allocated (0 without EnableCounting).
	NumRegs int
	// ClearGroups lists, per shared gap fragment, the guard bits its
	// match clears. Rules with an identical almost-dot-star gap class
	// share a single [X] fragment (the §IV-C action merging), so one gap
	// byte costs one filter event regardless of how many rules watch it.
	ClearGroups [][]int16
	// Counters are the counter-register descriptors (1-based from the
	// Actions' point of view) the bounded-gap extension allocated.
	Counters []filter.Counter
	Stats    Stats
}

// Program builds the filter program corresponding to the result.
func (r *Result) Program() *filter.Program {
	p := filter.NewProgramRegs(len(r.Actions), maxInt(r.MemBits, 1), r.NumRegs)
	for _, bits := range r.ClearGroups {
		p.AddClearGroup(bits)
	}
	for _, c := range r.Counters {
		p.AddCounter(c.MinGap, c.MaxGap)
	}
	for id := 1; id < len(r.Actions); id++ {
		p.SetAction(int32(id), r.Actions[id])
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// separatorKind classifies a top-level concat element.
type separatorKind int

const (
	notSeparator separatorKind = iota
	dotStarSep
	almostSep
	countSep
	boundedSep
)

// splitState carries the per-rule-set state of Algorithm 1's RegexSplit.
type splitState struct {
	opts    Options
	nextID  int32
	nextBit int16
	nextReg int16 // position registers are 1-based; 0 is filter.NoReg
	result  *Result

	// Gap-clear registry: almost-dot-star guard bits grouped by their
	// gap class X, emitted as one shared [X] fragment per class after
	// all rules are split.
	gapBits  map[regexparse.Class][]int16
	gapOrder []regexparse.Class
}

// Split runs Algorithm 1 over the rule set.
func Split(rules []Rule, opts Options) (*Result, error) {
	if opts.MaxClassSize <= 0 {
		opts.MaxClassSize = DefaultMaxClassSize
	}
	st := &splitState{
		opts:   opts,
		nextID: 1,
		result: &Result{
			Actions: []filter.Action{filter.DropAction}, // reserved id 0
		},
		gapBits: make(map[regexparse.Class][]int16),
	}
	st.result.Stats.RulesTotal = len(rules)
	for _, r := range rules {
		if r.RuleID <= 0 {
			return nil, fmt.Errorf("splitter: rule id %d must be positive", r.RuleID)
		}
		if err := st.splitRule(r); err != nil {
			return nil, fmt.Errorf("splitter: rule %d (%s): %w", r.RuleID, r.Pattern.Source, err)
		}
	}
	st.emitGapFragments()
	st.result.MemBits = int(st.nextBit)
	st.result.NumRegs = int(st.nextReg)
	return st.result, nil
}

// addGapClear registers bit to be cleared whenever a byte of class x
// occurs.
func (st *splitState) addGapClear(x regexparse.Class, bit int16) {
	if _, seen := st.gapBits[x]; !seen {
		st.gapOrder = append(st.gapOrder, x)
	}
	st.gapBits[x] = append(st.gapBits[x], bit)
}

// emitGapFragments appends one shared [X] fragment per distinct gap
// class, in first-use order, with a merged multi-bit clear action.
func (st *splitState) emitGapFragments() {
	for _, x := range st.gapOrder {
		group := int32(len(st.result.ClearGroups) + 1)
		st.result.ClearGroups = append(st.result.ClearGroups, st.gapBits[x])
		id := st.allocID(filter.Action{
			Test: filter.NoBit, Set: filter.NoBit, Clear: filter.NoBit,
			Report: filter.NoReport, ClearGroup: group,
		})
		st.result.Fragments = append(st.result.Fragments, Fragment{
			Pattern: &regexparse.Pattern{
				Root:   regexparse.NewClassNode(x),
				Source: regexparse.NewClassNode(x).String(),
			},
			InternalID: id,
		})
	}
}

// allocID reserves the next internal match id and installs its action.
func (st *splitState) allocID(a filter.Action) int32 {
	id := st.nextID
	st.nextID++
	st.result.Actions = append(st.result.Actions, a)
	return id
}

// allocBit reserves the next memory bit.
func (st *splitState) allocBit() int16 {
	b := st.nextBit
	st.nextBit++
	return b
}

// allocReg reserves the next position register (1-based).
func (st *splitState) allocReg() int16 {
	st.nextReg++
	return st.nextReg
}

// allocCtr reserves the next counter register (1-based) with the given
// witness window.
func (st *splitState) allocCtr(minGap, maxGap int32) int16 {
	st.result.Counters = append(st.result.Counters, filter.Counter{MinGap: minGap, MaxGap: maxGap})
	return int16(len(st.result.Counters))
}

// counterThreshold returns the effective bounded-gap threshold.
func (st *splitState) counterThreshold() int {
	if st.opts.CounterThreshold > 0 {
		return st.opts.CounterThreshold
	}
	return DefaultCounterThreshold
}

// boundedSepInfo reports whether a node qualifies as a bounded-gap
// separator under the current options: a BoundedGap shape whose upper
// bound reaches the counter threshold and whose forbidden class (if any)
// is below the class-size threshold. Returning false here merges the node
// into the adjacent segments for duplication expansion, which stays
// correct — counters only ever trade states for filter work.
func (st *splitState) boundedSepInfo(n *regexparse.Node) (x regexparse.Class, minGap, maxGap int, ok bool) {
	if !st.opts.EnableCounters {
		return regexparse.Class{}, 0, 0, false
	}
	minGap, maxGap, x, full, ok := n.BoundedGap()
	if !ok || maxGap < st.counterThreshold() {
		return regexparse.Class{}, 0, 0, false
	}
	if !full && x.Count() >= st.opts.MaxClassSize {
		// Not counted in RefusedClassSize: this helper runs once per node
		// per phase (shape detection, trimming, classification) and would
		// multi-count; an over-threshold class simply keeps the node out
		// of separator position.
		return regexparse.Class{}, 0, 0, false
	}
	return x, minGap, maxGap, true
}

// emit appends a fragment reporting the given internal id. anchored
// applies only to the first fragment of an anchored rule: later fragments
// search the whole flow, and their guard bits — set only after the
// anchored head matched — enforce the ordering.
func (st *splitState) emit(r Rule, node *regexparse.Node, id int32, anchored bool) {
	st.result.Fragments = append(st.result.Fragments, Fragment{
		Pattern: &regexparse.Pattern{
			Root:            node,
			Anchored:        anchored,
			CaseInsensitive: r.Pattern.CaseInsensitive,
			Source:          r.Pattern.Source,
		},
		InternalID: id,
		RuleID:     r.RuleID,
	})
}

// splitRule decomposes one rule.
//
// Soundness requires more than the paper's left-to-right sketch: every
// fragment that *tests* a guard bit must be a single gap-free segment —
// a tester retaining an internal .* could satisfy its guard with content
// preceding the guard segment. So acceptance runs right to left: the
// longest suffix of separators whose pairwise safety checks all pass is
// split; everything to the left of the first failure merges into the
// initial (pure-setter or unsplit) fragment, where internal gaps are
// harmless.
func (st *splitState) splitRule(r Rule) error {
	segments, seps, ok := st.topLevelSegments(r.Pattern)
	if !ok || len(seps) == 0 {
		// Nothing to decompose: a single fragment whose match confirms
		// unconditionally.
		if !ok {
			st.result.Stats.RefusedStructural++
		}
		id := st.allocID(filter.Action{
			Test: filter.NoBit, Set: filter.NoBit, Clear: filter.NoBit, Report: r.RuleID,
		})
		st.emit(r, r.Pattern.Root, id, r.Pattern.Anchored)
		return nil
	}

	// Phase 1 (right to left): find the smallest k such that separators
	// k..len(seps)-1 all pass their safety checks against their adjacent
	// segments. A failure at i rejects every separator ≤ i as well,
	// because a refused gap may only live in the leftmost fragment.
	kinds := make([]separatorKind, len(seps))
	xs := make([]regexparse.Class, len(seps))
	gaps := make([]int, len(seps)) // minimum gap for countSep/boundedSep entries
	maxs := make([]int, len(seps)) // maximum gap for boundedSep entries
	k := 0
	for i := len(seps) - 1; i >= 0; i-- {
		kind, x, minGap, maxGap := st.classify(seps[i])
		safe := kind != notSeparator
		if safe && (kind == countSep || kind == boundedSep) {
			// The gap test recovers the trailing fragment's start from
			// its end, which needs a fixed match length. This condition
			// is not skippable: without it the filter arithmetic is
			// simply undefined.
			lenB, fixed := segments[i+1].FixedLength()
			if !fixed {
				st.result.Stats.RefusedVarLength++
				safe = false
			} else if kind == boundedSep {
				switch {
				case lenB < 1:
					// A zero-length trailing segment would test and record
					// at the same position; refuse rather than reason
					// about event ordering.
					st.result.Stats.RefusedVarLength++
					safe = false
				case maxGap+lenB > filter.MaxCounterGap,
					len(st.result.Counters) >= filter.MaxCounters-len(seps):
					st.result.Stats.RefusedCounterSpan++
					safe = false
				case x.Count() != 0:
					// A classed gap [^X]{n,m} is invalidated by X bytes
					// via reset events; X occurring inside B would fire a
					// reset mid-B and kill a still-valid witness, so this
					// condition (like fixed length) is not skippable.
					inB, err := classAppearsIn(x, segments[i+1])
					if err != nil {
						return err
					}
					if inB {
						st.result.Stats.RefusedCounterXInB++
						safe = false
					}
				}
			}
		}
		if safe && kind != countSep && kind != boundedSep && !st.opts.DisableSafetyChecks {
			var err error
			safe, err = st.checkSafety(kind, x, segments[i], segments[i+1])
			if err != nil {
				return err
			}
		}
		if !safe {
			k = i + 1
			st.result.Stats.RefusedCascade += i
			break
		}
		kinds[i], xs[i], gaps[i], maxs[i] = kind, x, minGap, maxGap
	}

	// Phase 2 (left to right): merge segments[0..k] and seps[0..k-1] into
	// the initial fragment, then emit one fragment per accepted split with
	// guard-bit chaining.
	head := make([]*regexparse.Node, 0, 2*k+1)
	for i := 0; i < k; i++ {
		head = append(head, segments[i].Clone(), seps[i].Clone())
	}
	head = append(head, segments[k].Clone())
	pending := regexparse.NewConcat(head...)

	if k == len(seps) {
		// Every separator was refused: the rule stays whole.
		id := st.allocID(filter.Action{
			Test: filter.NoBit, Set: filter.NoBit, Clear: filter.NoBit, Report: r.RuleID,
		})
		st.emit(r, pending, id, r.Pattern.Anchored)
		return nil
	}

	// By default only the head fragment of an anchored rule keeps the
	// anchor; with PrependAnchors the paper's §IV-C scheme applies
	// instead (see the Options field comment).
	//
	// cond is the chaining condition a fragment must satisfy before its
	// own effect fires: a guard bit for dot-star/almost-dot-star links, a
	// register gap test for counting links.
	first := true
	cond := filter.Action{Test: filter.NoBit, GapReg: filter.NoReg}
	var anchorPrefix *regexparse.Node
	withAnchor := func(body *regexparse.Node) (*regexparse.Node, bool) {
		if anchorPrefix == nil {
			return body, false
		}
		return regexparse.NewConcat(anchorPrefix.Clone(), regexparse.DotStar(), body), true
	}

	for i := k; i < len(seps); i++ {
		act := filter.Action{
			Test: cond.Test, GapReg: cond.GapReg, MinGap: cond.MinGap,
			TestCtr: cond.TestCtr,
			Set:     filter.NoBit, Clear: filter.NoBit, Report: filter.NoReport,
		}
		body, bodyAnchored := withAnchor(pending)
		switch kinds[i] {
		case countSep:
			reg := st.allocReg()
			act.SetPos = reg
			lenB, _ := segments[i+1].FixedLength()
			cond = filter.Action{Test: filter.NoBit, GapReg: reg, MinGap: int32(gaps[i] + lenB)}
			st.result.Stats.CountingSplits++
			st.emit(r, body, st.allocID(act), bodyAnchored || (first && r.Pattern.Anchored))
		case boundedSep:
			lenB, _ := segments[i+1].FixedLength()
			ctr := st.allocCtr(int32(gaps[i]+lenB), int32(maxs[i]+lenB))
			act.SetCtr = ctr
			if xs[i].Count() != 0 {
				// Classed gap: a shared-per-counter [X] fragment kills
				// every witness whose gap would contain the forbidden
				// byte. The reset is anchor-independent — an X byte
				// invalidates outstanding witnesses whether or not the
				// rule's head ever matched — so the fragment is always
				// emitted unanchored.
				resetID := st.allocID(filter.Action{
					Test: filter.NoBit, Set: filter.NoBit, Clear: filter.NoBit,
					Report: filter.NoReport, ResetCtr: ctr,
				})
				st.emit(r, regexparse.NewClassNode(xs[i]), resetID, false)
			}
			cond = filter.Action{Test: filter.NoBit, TestCtr: ctr}
			st.result.Stats.CounterSplits++
			st.emit(r, body, st.allocID(act), bodyAnchored || (first && r.Pattern.Anchored))
		default:
			bit := st.allocBit()
			act.Set = bit
			cond = filter.Action{Test: bit, GapReg: filter.NoReg}
			st.emit(r, body, st.allocID(act), bodyAnchored || (first && r.Pattern.Anchored))
			if kinds[i] == almostSep {
				// The shared gap fragment [X] (emitted once per class
				// after all rules) clears the bit on every occurrence
				// of a byte from X. With PrependAnchors the gap is
				// rule-private (its pattern embeds the anchored head),
				// matching the paper exactly.
				if st.opts.PrependAnchors && anchorPrefix != nil {
					clearID := st.allocID(filter.Action{
						Test: filter.NoBit, Set: filter.NoBit, Clear: bit, Report: filter.NoReport,
					})
					gapBody, _ := withAnchor(regexparse.NewClassNode(xs[i]))
					st.emit(r, gapBody, clearID, true)
				} else {
					st.addGapClear(xs[i], bit)
				}
				st.result.Stats.AlmostSplits++
			} else {
				st.result.Stats.DotStarSplits++
			}
		}
		if first && r.Pattern.Anchored && st.opts.PrependAnchors {
			anchorPrefix = pending
		}
		first = false
		pending = segments[i+1].Clone()
	}

	finalBody, finalAnchored := withAnchor(pending)
	finalID := st.allocID(filter.Action{
		Test: cond.Test, GapReg: cond.GapReg, MinGap: cond.MinGap,
		TestCtr: cond.TestCtr,
		Set:     filter.NoBit, Clear: filter.NoBit, Report: r.RuleID,
	})
	st.emit(r, finalBody, finalID, finalAnchored)
	st.result.Stats.RulesDecomposed++
	return nil
}

// classify decides whether a top-level node is a decomposition separator,
// returning the negated class X for almost-dot-star and classed bounded
// gaps, and the gap bounds for counting and bounded separators.
func (st *splitState) classify(sep *regexparse.Node) (separatorKind, regexparse.Class, int, int) {
	if sep.IsDotStar() {
		if st.opts.DisableDotStar {
			return notSeparator, regexparse.Class{}, 0, 0
		}
		return dotStarSep, regexparse.Class{}, 0, 0
	}
	if x, ok := sep.NegatedClassStar(); ok {
		if st.opts.DisableAlmostDotStar {
			return notSeparator, regexparse.Class{}, 0, 0
		}
		if x.Count() >= st.opts.MaxClassSize {
			st.result.Stats.RefusedClassSize++
			return notSeparator, regexparse.Class{}, 0, 0
		}
		return almostSep, x, 0, 0
	}
	if st.opts.EnableCounting {
		if minGap, ok := sep.CountGap(); ok {
			return countSep, regexparse.Class{}, minGap, 0
		}
	}
	if x, minGap, maxGap, ok := st.boundedSepInfo(sep); ok {
		return boundedSep, x, minGap, maxGap
	}
	return notSeparator, regexparse.Class{}, 0, 0
}

// checkSafety applies the decomposition-validity conditions to a
// candidate split between adjacent segments a and b: the paper's
// suffix/prefix condition, the infix condition its rationale implies (see
// InfixOverlap), and for almost-dot-star the two class conditions of
// §IV-B.
func (st *splitState) checkSafety(kind separatorKind, x regexparse.Class, a, b *regexparse.Node) (bool, error) {
	overlap, err := SuffixPrefixOverlap(a, b)
	if err != nil {
		return false, err
	}
	if overlap {
		st.result.Stats.RefusedOverlap++
		return false, nil
	}
	infix, err := InfixOverlap(a, b)
	if err != nil {
		return false, err
	}
	if infix {
		st.result.Stats.RefusedInfix++
		return false, nil
	}
	if kind == almostSep {
		inB, err := classAppearsIn(x, b)
		if err != nil {
			return false, err
		}
		if inB {
			st.result.Stats.RefusedXInB++
			return false, nil
		}
		finalA, err := classInFinalPosition(x, a)
		if err != nil {
			return false, err
		}
		if finalA {
			st.result.Stats.RefusedXFinalInA++
			return false, nil
		}
	}
	return true, nil
}

// topLevelSegments decomposes the pattern's root into alternating segments
// and separators: seg[0] sep[0] seg[1] sep[1] ... seg[n]. Leading
// separators of unanchored patterns are redundant with the implicit .*
// search prefix and are dropped; other degenerate shapes (top-level
// alternation, empty segments around a separator) yield ok=false and the
// rule is kept whole.
func (st *splitState) topLevelSegments(p *regexparse.Pattern) (segments []*regexparse.Node, seps []*regexparse.Node, ok bool) {
	root := p.Root
	if root.Op != regexparse.OpConcat {
		if st.isSeparatorShape(root) {
			// The whole pattern is .*-like; nothing to split.
			return nil, nil, false
		}
		return []*regexparse.Node{root}, nil, true
	}

	subs := root.Subs
	// Drop redundant leading dot-star of an unanchored rule: ".*A..." and
	// "A..." search identically. (A leading [^X]* is equally redundant:
	// the gap may be empty — but a leading .{n,} is NOT: it demands n
	// bytes before the next segment, so it is never trimmed.)
	if !p.Anchored {
		for len(subs) > 0 && st.isTrimmableLeading(subs[0]) {
			subs = subs[1:]
		}
	}
	if len(subs) == 0 {
		return nil, nil, false
	}

	var cur []*regexparse.Node
	flush := func() bool {
		if len(cur) == 0 {
			return false
		}
		segments = append(segments, regexparse.NewConcat(cur...))
		cur = nil
		return true
	}
	for _, sub := range subs {
		if st.isSeparatorShape(sub) {
			if !flush() {
				// Empty segment before a separator (e.g. ".*.*A" after
				// trimming, or an anchored "^.*A"): merge the separator
				// into the segment instead of splitting.
				cur = append(cur, sub)
				continue
			}
			seps = append(seps, sub)
			continue
		}
		cur = append(cur, sub)
	}
	if !flush() {
		// Trailing separator: "A.*" — fold it back into the last segment,
		// since an empty right side cannot be split off.
		if len(seps) > 0 {
			last := seps[len(seps)-1]
			seps = seps[:len(seps)-1]
			segments[len(segments)-1] = regexparse.NewConcat(segments[len(segments)-1], last)
		}
	}
	if len(segments) != len(seps)+1 {
		return nil, nil, false
	}
	return segments, seps, true
}

// isSeparatorShape reports whether a node looks like a separator, before
// any threshold or safety filtering: .* or [^X]* always, and .{n,} when
// the counting extension is enabled.
func (st *splitState) isSeparatorShape(n *regexparse.Node) bool {
	if n.IsDotStar() {
		return true
	}
	if _, ok := n.NegatedClassStar(); ok {
		return true
	}
	if st.opts.EnableCounting {
		if _, ok := n.CountGap(); ok {
			return true
		}
	}
	if _, _, _, ok := st.boundedSepInfo(n); ok {
		return true
	}
	return false
}

// isTrimmableLeading reports whether a leading top-level node of an
// unanchored rule is redundant with the implicit search prefix: .* and
// [^X]* gaps may be empty, so dropping them changes nothing — as may a
// bounded gap X{0,m} when the counter extension would otherwise split on
// it. A counting gap .{n,} or a bounded gap with n >= 1 is not trimmable —
// it demands bytes before the next segment.
func (st *splitState) isTrimmableLeading(n *regexparse.Node) bool {
	if n.IsDotStar() {
		return true
	}
	if _, ok := n.NegatedClassStar(); ok {
		return true
	}
	if _, minGap, _, ok := st.boundedSepInfo(n); ok && minGap == 0 {
		return true
	}
	return false
}
