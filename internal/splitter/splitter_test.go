package splitter

import (
	"strings"
	"testing"

	"matchfilter/internal/filter"
	"matchfilter/internal/regexparse"
)

func mustRules(t *testing.T, sources ...string) []Rule {
	t.Helper()
	rules := make([]Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rules[i] = Rule{Pattern: p, RuleID: int32(i + 1)}
	}
	return rules
}

func split(t *testing.T, opts Options, sources ...string) *Result {
	t.Helper()
	res, err := Split(mustRules(t, sources...), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fragmentSources renders each fragment's effective pattern for assertions.
func fragmentSources(res *Result) []string {
	out := make([]string, len(res.Fragments))
	for i, f := range res.Fragments {
		s := f.Pattern.Root.String()
		if f.Pattern.Anchored {
			s = "^" + s
		}
		out[i] = s
	}
	return out
}

func TestDotStarSplit(t *testing.T) {
	res := split(t, Options{}, "vi.*emacs")
	if len(res.Fragments) != 2 {
		t.Fatalf("want 2 fragments, got %v", fragmentSources(res))
	}
	got := fragmentSources(res)
	if got[0] != "vi" || got[1] != "emacs" {
		t.Fatalf("fragments: %v", got)
	}
	if res.MemBits != 1 {
		t.Fatalf("MemBits = %d, want 1", res.MemBits)
	}
	// Actions: id1 = Set 0 (no report), id2 = Test 0 to Match rule 1.
	a1, a2 := res.Actions[1], res.Actions[2]
	if a1.Set != 0 || a1.Test != filter.NoBit || a1.Report != filter.NoReport {
		t.Errorf("setter action: %+v", a1)
	}
	if a2.Test != 0 || a2.Report != 1 || a2.Set != filter.NoBit {
		t.Errorf("final action: %+v", a2)
	}
}

func TestChainedDotStar(t *testing.T) {
	// .*A.*B.*C uses two bits with a Test-to-Set chain (§IV-A).
	res := split(t, Options{}, "aaa.*bbb.*ccc")
	if len(res.Fragments) != 3 || res.MemBits != 2 {
		t.Fatalf("fragments=%v bits=%d", fragmentSources(res), res.MemBits)
	}
	a1, a2, a3 := res.Actions[1], res.Actions[2], res.Actions[3]
	if a1.Test != filter.NoBit || a1.Set != 0 {
		t.Errorf("a1: %+v", a1)
	}
	if a2.Test != 0 || a2.Set != 1 || a2.Report != filter.NoReport {
		t.Errorf("a2 should be Test 0 to Set 1: %+v", a2)
	}
	if a3.Test != 1 || a3.Report != 1 {
		t.Errorf("a3 should be Test 1 to Match: %+v", a3)
	}
}

func TestAlmostDotStarSplit(t *testing.T) {
	res := split(t, Options{}, `abc[^\n]*xyz`)
	got := fragmentSources(res)
	if len(got) != 3 {
		t.Fatalf("want 3 fragments, got %v", got)
	}
	// Gap fragments are shared across rules, so they come last.
	if got[0] != "abc" || got[1] != "xyz" || got[2] != `\n` {
		t.Fatalf("fragments: %v", got)
	}
	// §IV-B: 1a: Set 0, 1b: Clear 0 (as a clear group), 1: Test 0 to Match.
	if a := res.Actions[1]; a.Set != 0 {
		t.Errorf("1a: %+v", a)
	}
	if a := res.Actions[2]; a.Test != 0 || a.Report != 1 {
		t.Errorf("1: %+v", a)
	}
	if a := res.Actions[3]; a.ClearGroup != 1 || a.Test != filter.NoBit {
		t.Errorf("1b: %+v", a)
	}
	if len(res.ClearGroups) != 1 || len(res.ClearGroups[0]) != 1 || res.ClearGroups[0][0] != 0 {
		t.Errorf("clear groups: %v", res.ClearGroups)
	}
	if res.Stats.AlmostSplits != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestSharedGapFragments(t *testing.T) {
	// Three rules with the same gap class share one [X] fragment whose
	// action clears all three guard bits; a distinct class gets its own.
	res := split(t, Options{},
		`a1[^\n]*b1`, `a2[^\n]*b2`, `a3[^\n]*b3`, `a4[^#]*b4`)
	var gapFragments int
	for _, f := range res.Fragments {
		if f.RuleID == 0 {
			gapFragments++
		}
	}
	if gapFragments != 2 {
		t.Fatalf("want 2 shared gap fragments, got %d (%v)", gapFragments, fragmentSources(res))
	}
	if len(res.ClearGroups) != 2 {
		t.Fatalf("clear groups: %v", res.ClearGroups)
	}
	if len(res.ClearGroups[0]) != 3 || len(res.ClearGroups[1]) != 1 {
		t.Fatalf("group membership: %v", res.ClearGroups)
	}
}

func TestOverlapRefused(t *testing.T) {
	// The paper's own counterexample: .*abc.*bcd must NOT decompose,
	// because suffix "bc" of abc is a prefix of bcd.
	res := split(t, Options{}, "abc.*bcd")
	if len(res.Fragments) != 1 {
		t.Fatalf("overlapping rule must stay whole, got %v", fragmentSources(res))
	}
	if res.Stats.RefusedOverlap != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	// The action still reports unconditionally.
	if a := res.Actions[1]; a.Report != 1 || a.Test != filter.NoBit {
		t.Errorf("action: %+v", a)
	}
}

func TestOverlapFullContainment(t *testing.T) {
	// B equal to a suffix of A is also an overlap (B = suffix of A).
	res := split(t, Options{}, "xabc.*abc")
	if len(res.Fragments) != 1 {
		t.Fatalf("must refuse: %v", fragmentSources(res))
	}
}

func TestNoOverlapSplits(t *testing.T) {
	res := split(t, Options{}, "abc.*xyz")
	if len(res.Fragments) != 2 {
		t.Fatalf("disjoint strings must split: %v", fragmentSources(res))
	}
}

func TestOverlapWithAlternation(t *testing.T) {
	// suffix(A) meets prefix(B) through one alternation branch only.
	res := split(t, Options{}, "(foo|bar).*(rat|dog)")
	if len(res.Fragments) != 1 || res.Stats.RefusedOverlap != 1 {
		t.Fatalf("suffix 'r' of bar is prefix of rat: %v", fragmentSources(res))
	}
	res = split(t, Options{}, "(foo|bar).*(cat|dog)")
	if len(res.Fragments) != 2 {
		t.Fatalf("no overlap here: %v", fragmentSources(res))
	}
}

func TestDisableSafetyChecks(t *testing.T) {
	res := split(t, Options{DisableSafetyChecks: true}, "abc.*bcd")
	if len(res.Fragments) != 2 {
		t.Fatalf("unsafe mode must split anyway: %v", fragmentSources(res))
	}
}

func TestClassSizeThreshold(t *testing.T) {
	// .*abc[a-f]*xyz: X = [^a-f] has 250 members ≥ 128, so §IV-B refuses.
	res := split(t, Options{}, "abc[a-f]*xyz")
	if len(res.Fragments) != 1 {
		t.Fatalf("large X must be refused: %v", fragmentSources(res))
	}
	if res.Stats.RefusedClassSize != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
	// Even with a raised threshold, X∩B ≠ ∅ here (x,y,z ∈ [^a-f]), so the
	// safety check still refuses — the paper presents this decomposition
	// as an improper application.
	res = split(t, Options{MaxClassSize: 256}, "abc[a-f]*xyz")
	if len(res.Fragments) != 1 || res.Stats.RefusedXInB != 1 {
		t.Fatalf("raised threshold must still refuse via X-in-B: %v %+v",
			fragmentSources(res), res.Stats)
	}
	// Only disabling safety checks entirely forces the (incorrect) split.
	res = split(t, Options{MaxClassSize: 256, DisableSafetyChecks: true}, "abc[a-f]*xyz")
	if len(res.Fragments) != 3 {
		t.Fatalf("unsafe mode should split: %v", fragmentSources(res))
	}
}

func TestXInBRefused(t *testing.T) {
	// X = {:} appears inside B ("x:y"), which would clear the guard bit
	// mid-B and suppress all matches.
	res := split(t, Options{}, "abc[^:]*x:y")
	if len(res.Fragments) != 1 || res.Stats.RefusedXInB != 1 {
		t.Fatalf("X in B must refuse: %v %+v", fragmentSources(res), res.Stats)
	}
}

func TestXFinalInARefused(t *testing.T) {
	// A ends in a byte of X: simultaneous set+clear cannot be expressed.
	res := split(t, Options{}, "ab:[^:]*xyz")
	if len(res.Fragments) != 1 || res.Stats.RefusedXFinalInA != 1 {
		t.Fatalf("X final in A must refuse: %v %+v", fragmentSources(res), res.Stats)
	}
	// X in a non-final position of A is fine (§IV-B allows it).
	res = split(t, Options{}, "a:b[^:]*xyz")
	if len(res.Fragments) != 3 {
		t.Fatalf("X mid-A should split: %v", fragmentSources(res))
	}
}

func TestTableIIIProgram(t *testing.T) {
	// The R1 rule set of Table I produces a 7-fragment, 4-bit program
	// with the same shape as Table III.
	res := split(t, Options{}, "vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz")
	if len(res.Fragments) != 7 {
		t.Fatalf("want 7 fragments, got %v", fragmentSources(res))
	}
	if res.MemBits != 4 {
		t.Fatalf("want 4 memory bits as in Table III, got %d", res.MemBits)
	}
	prog := res.Program()
	s := prog.String()
	for _, want := range []string{"Set 0", "Test 0 to Match", "Set 1", "Test 1 to Match", "Set 2", "Test 2 to Set 3", "Test 3 to Match"} {
		if !strings.Contains(s, want) {
			t.Errorf("program missing %q:\n%s", want, s)
		}
	}
}

func TestAnchoredSplit(t *testing.T) {
	// Only the head fragment keeps the anchor; the guard chain enforces
	// ordering for the unanchored tail fragments (deviation from the
	// paper's prepend scheme, see DESIGN.md).
	res := split(t, Options{}, "^hdr.*abc.*xyz")
	got := fragmentSources(res)
	if len(got) != 3 {
		t.Fatalf("fragments: %v", got)
	}
	if got[0] != "^hdr" {
		t.Errorf("first fragment: %q", got[0])
	}
	if got[1] != "abc" || got[2] != "xyz" {
		t.Errorf("tail fragments must be unanchored: %v", got)
	}
	// The actions chain through the anchored head.
	if a := res.Actions[1]; a.Set != 0 {
		t.Errorf("head action: %+v", a)
	}
	if a := res.Actions[3]; a.Test != 1 || a.Report != 1 {
		t.Errorf("final action: %+v", a)
	}
}

func TestLeadingDotStarDropped(t *testing.T) {
	// Explicit leading .* on an unanchored rule is redundant.
	res := split(t, Options{}, ".*abc.*xyz")
	got := fragmentSources(res)
	if len(got) != 2 || got[0] != "abc" || got[1] != "xyz" {
		t.Fatalf("fragments: %v", got)
	}
}

func TestTrailingSeparatorKept(t *testing.T) {
	// "abc.*" has nothing to split off on the right.
	res := split(t, Options{}, "abc.*")
	got := fragmentSources(res)
	if len(got) != 1 || got[0] != "abc.*" {
		t.Fatalf("fragments: %v", got)
	}
}

func TestTopLevelAlternationKeptWhole(t *testing.T) {
	res := split(t, Options{}, "ab.*cd|ef.*gh")
	if len(res.Fragments) != 1 {
		t.Fatalf("top-level alternation must stay whole: %v", fragmentSources(res))
	}
	if res.Stats.RulesDecomposed != 0 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestDisableDotStar(t *testing.T) {
	res := split(t, Options{DisableDotStar: true}, "abc.*xyz", `abc[^\n]*xyz`)
	got := fragmentSources(res)
	// Dot-star rule whole; almost-dot-star still splits.
	if got[0] != "abc.*xyz" {
		t.Errorf("dot-star should be kept: %v", got)
	}
	if res.Stats.AlmostSplits != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestDisableAlmostDotStar(t *testing.T) {
	res := split(t, Options{DisableAlmostDotStar: true}, `abc[^\n]*xyz`, "abc.*xyz")
	if res.Stats.AlmostSplits != 0 || res.Stats.DotStarSplits != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestGlobalIDAndBitAllocation(t *testing.T) {
	// Ids and bits must be globally unique across rules (§III-C).
	res := split(t, Options{}, "aa.*bb", "cc.*dd")
	if res.MemBits != 2 {
		t.Fatalf("MemBits = %d", res.MemBits)
	}
	seenIDs := map[int32]bool{}
	for _, f := range res.Fragments {
		if seenIDs[f.InternalID] {
			t.Fatalf("duplicate internal id %d", f.InternalID)
		}
		seenIDs[f.InternalID] = true
	}
	if res.Actions[1].Set == res.Actions[3].Set {
		t.Errorf("rules must use distinct bits: %+v vs %+v", res.Actions[1], res.Actions[3])
	}
}

func TestRuleIDValidation(t *testing.T) {
	p, err := regexparse.Parse("abc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Split([]Rule{{Pattern: p, RuleID: 0}}, Options{}); err == nil {
		t.Fatal("rule id 0 must be rejected")
	}
}

func TestMixedSeparators(t *testing.T) {
	// dot-star then almost-dot-star in one rule: .*A.*B[^X]*C.
	res := split(t, Options{}, `hdr.*abc[^\n]*xyz`)
	got := fragmentSources(res)
	if len(got) != 4 {
		t.Fatalf("want 4 fragments (hdr, abc, \\n, xyz): %v", got)
	}
	// Chain: hdr sets 0; abc tests 0 sets 1; the shared \n gap fragment
	// (emitted last) clears 1; xyz tests 1.
	if a := res.Actions[2]; a.Test != 0 || a.Set != 1 {
		t.Errorf("abc action: %+v", a)
	}
	if a := res.Actions[3]; a.Test != 1 || a.Report != 1 {
		t.Errorf("final action: %+v", a)
	}
	if a := res.Actions[4]; a.ClearGroup != 1 {
		t.Errorf("gap action: %+v", a)
	}
	if len(res.ClearGroups) != 1 || res.ClearGroups[0][0] != 1 {
		t.Errorf("clear groups: %v", res.ClearGroups)
	}
}

func TestSuffixPrefixOverlapDirect(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"abc", "bcd", true},   // "bc"
		{"abc", "xyz", false},  //
		{"abc", "cab", true},   // "c"
		{"ab+", "bbq", true},   // suffix "b"/"bb" vs prefix "b"/"bb"
		{"foo", "ofo", true},   // "o"
		{"foo", "fgh", false},  // suffixes are foo/oo/o; prefixes f/fg/fgh
		{"a[xy]", "yz", true},  // branchy final char
		{"a[xy]", "qz", false}, //
		{"(ab|cd)", "dx", true},
		{"(ab|cd)", "ex", false},
	}
	for _, tc := range cases {
		pa, err := regexparse.Parse(tc.a)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := regexparse.Parse(tc.b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SuffixPrefixOverlap(pa.Root, pb.Root)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("overlap(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSplitStatsTotals(t *testing.T) {
	res := split(t, Options{}, "a1b.*c2d", "plainstring", "e3f.*f3g")
	if res.Stats.RulesTotal != 3 {
		t.Errorf("RulesTotal = %d", res.Stats.RulesTotal)
	}
	// Rule 1 splits; rule 2 has no separators; rule 3 overlaps (f3).
	if res.Stats.RulesDecomposed != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestCountingSplitStructure(t *testing.T) {
	res := split(t, Options{EnableCounting: true}, "aa.{7,}bbb")
	got := fragmentSources(res)
	if len(got) != 2 || got[0] != "aa" || got[1] != "bbb" {
		t.Fatalf("fragments: %v", got)
	}
	if res.NumRegs != 1 || res.MemBits != 0 {
		t.Fatalf("regs=%d bits=%d", res.NumRegs, res.MemBits)
	}
	// aa records its position; bbb requires gap >= 7 + len("bbb") = 10.
	if a := res.Actions[1]; a.SetPos != 1 || a.Test != filter.NoBit {
		t.Errorf("recorder: %+v", a)
	}
	if a := res.Actions[2]; a.GapReg != 1 || a.MinGap != 10 || a.Report != 1 {
		t.Errorf("gap tester: %+v", a)
	}
	if res.Stats.CountingSplits != 1 {
		t.Errorf("stats: %+v", res.Stats)
	}
}

func TestCountingDisabledKeepsRepeat(t *testing.T) {
	res := split(t, Options{}, "aa.{7,}bbb")
	if len(res.Fragments) != 1 {
		t.Fatalf("counting off: fragments %v", fragmentSources(res))
	}
	if res.NumRegs != 0 {
		t.Errorf("regs allocated with counting off")
	}
}

func TestCountingVariableTailRefusedAtSplitter(t *testing.T) {
	res := split(t, Options{EnableCounting: true}, "aa.{3,}b+")
	if len(res.Fragments) != 1 || res.Stats.RefusedVarLength != 1 {
		t.Fatalf("variable tail: %v %+v", fragmentSources(res), res.Stats)
	}
}

func TestCountingChainActions(t *testing.T) {
	// aa.{2,}bb.*cc: register gap guards the bit setter; bit guards the
	// final report.
	res := split(t, Options{EnableCounting: true}, "aa.{2,}bb.*cc")
	if len(res.Fragments) != 3 {
		t.Fatalf("fragments: %v", fragmentSources(res))
	}
	if a := res.Actions[2]; a.GapReg != 1 || a.MinGap != 4 || a.Set != 0 {
		t.Errorf("middle action: %+v", a)
	}
	if a := res.Actions[3]; a.Test != 0 || a.Report != 1 {
		t.Errorf("final action: %+v", a)
	}
}

func TestPrependAnchorsOption(t *testing.T) {
	// With the paper's §IV-C scheme, later fragments of an anchored rule
	// carry the anchored head.
	res := split(t, Options{PrependAnchors: true}, "^hdr.*abc.*xyz")
	got := fragmentSources(res)
	if len(got) != 3 {
		t.Fatalf("fragments: %v", got)
	}
	if got[0] != "^hdr" || got[1] != "^hdr.*abc" || got[2] != "^hdr.*xyz" {
		t.Fatalf("prepended fragments: %v", got)
	}
	// Almost-dot-star gaps become rule-private with the head embedded.
	res = split(t, Options{PrependAnchors: true}, `^hdr.*abc[^\n]*xyz`)
	got = fragmentSources(res)
	found := false
	for _, f := range got {
		if f == `^hdr.*\n` {
			found = true
		}
	}
	if !found {
		t.Fatalf("want anchored gap fragment, got %v", got)
	}
	// Unanchored rules are unaffected.
	res = split(t, Options{PrependAnchors: true}, "abc.*xyz")
	got = fragmentSources(res)
	if got[0] != "abc" || got[1] != "xyz" {
		t.Fatalf("unanchored fragments: %v", got)
	}
}
