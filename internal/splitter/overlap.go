package splitter

import (
	"matchfilter/internal/nfa"
	"matchfilter/internal/regexparse"
)

// SuffixPrefixOverlap reports whether some non-empty string is both a
// suffix of a word in L(a) and a prefix of a word in L(b). This is the
// paper's validity condition for dot-star decomposition: if such a string
// exists, B could begin matching before A finishes, and the decomposed
// filter would confirm matches the original regex rejects (the
// .*abc.*bcd / "abcd" example of §IV-A).
//
// The check runs a BFS over the product of A's suffix automaton (A's NFA
// with every state initial — every Thompson state lies on a start→accept
// path, so paths from any state to the accept spell exactly the suffixes)
// and B's prefix automaton (B's NFA with every state accepting — every
// state is co-accessible, so paths from the start spell exactly the
// prefixes). Any product state reachable by ≥1 byte whose A-side accepts
// witnesses an overlap.
func SuffixPrefixOverlap(a, b *regexparse.Node) (bool, error) {
	na, err := nfa.BuildSingle(a)
	if err != nil {
		return false, err
	}
	nb, err := nfa.BuildSingle(b)
	if err != nil {
		return false, err
	}

	seenA := make([]bool, na.NumStates())
	seenB := make([]bool, nb.NumStates())

	// accepting[s] is true when s's epsilon closure contains A's accept.
	acceptingA := make([]bool, na.NumStates())
	for s := range na.States {
		for _, q := range na.EpsClosure([]nfa.StateID{nfa.StateID(s)}, seenA) {
			if len(na.States[q].Matches) > 0 {
				acceptingA[s] = true
				break
			}
		}
	}

	startB := nb.EpsClosure([]nfa.StateID{nb.Start}, seenB)

	type pair struct{ a, b nfa.StateID }
	visited := make(map[pair]bool)
	var frontier []pair

	push := func(p pair, depth int) bool {
		if visited[p] {
			return false
		}
		visited[p] = true
		if depth > 0 && acceptingA[p.a] {
			return true
		}
		frontier = append(frontier, p)
		return false
	}

	// Depth 0: every A state paired with B's start closure. Nothing can
	// accept yet — the empty string is always a common suffix/prefix and
	// is explicitly excluded by the paper's condition.
	for s := range na.States {
		for _, bs := range startB {
			if push(pair{nfa.StateID(s), bs}, 0) {
				return true, nil
			}
		}
	}

	scratchA := make([]bool, na.NumStates())
	scratchB := make([]bool, nb.NumStates())
	for len(frontier) > 0 {
		cur := frontier
		frontier = nil
		for _, p := range cur {
			for _, ta := range na.States[p.a].Trans {
				for _, tb := range nb.States[p.b].Trans {
					if ta.Class.Intersect(tb.Class).IsEmpty() {
						continue
					}
					closA := na.EpsClosure([]nfa.StateID{ta.To}, scratchA)
					closB := nb.EpsClosure([]nfa.StateID{tb.To}, scratchB)
					for _, qa := range closA {
						for _, qb := range closB {
							if push(pair{qa, qb}, 1) {
								return true, nil
							}
						}
					}
				}
			}
		}
	}
	return false, nil
}

// InfixOverlap reports whether some word of L(a) occurs as a factor
// (substring) of a word of L(b). This condition is required in addition to
// SuffixPrefixOverlap: the paper's formal statement only forbids
// suffix/prefix sharing, but its rationale — "B begins matching before A
// finishes matching" — also covers A-matches lying entirely inside B's
// span. Without this check, decomposing .*b.*abc wrongly confirms on
// input "abc" (the filter sees A="b" end at offset 1, inside B's match),
// and a trailing fragment that kept an internal gap (e.g. "xyz.*xyz"
// after a refused inner split) could satisfy its guard with content that
// precedes the guard segment. The check runs a BFS over the product of
// A's NFA (from its true start) and B's factor automaton (every state
// initial and accepting); reaching an accepting A-state after ≥1 byte
// witnesses the containment.
func InfixOverlap(a, b *regexparse.Node) (bool, error) {
	na, err := nfa.BuildSingle(a)
	if err != nil {
		return false, err
	}
	nb, err := nfa.BuildSingle(b)
	if err != nil {
		return false, err
	}

	seenA := make([]bool, na.NumStates())

	acceptingA := make([]bool, na.NumStates())
	for s := range na.States {
		for _, q := range na.EpsClosure([]nfa.StateID{nfa.StateID(s)}, seenA) {
			if len(na.States[q].Matches) > 0 {
				acceptingA[s] = true
				break
			}
		}
	}
	startA := na.EpsClosure([]nfa.StateID{na.Start}, seenA)

	type pair struct{ a, b nfa.StateID }
	visited := make(map[pair]bool)
	var frontier []pair

	push := func(p pair, depth int) bool {
		if visited[p] {
			return false
		}
		visited[p] = true
		if depth > 0 && acceptingA[p.a] {
			return true
		}
		frontier = append(frontier, p)
		return false
	}

	for _, as := range startA {
		for bs := range nb.States {
			if push(pair{as, nfa.StateID(bs)}, 0) {
				return true, nil
			}
		}
	}

	scratchA := make([]bool, na.NumStates())
	scratchB := make([]bool, nb.NumStates())
	for len(frontier) > 0 {
		cur := frontier
		frontier = nil
		for _, p := range cur {
			for _, ta := range na.States[p.a].Trans {
				for _, tb := range nb.States[p.b].Trans {
					if ta.Class.Intersect(tb.Class).IsEmpty() {
						continue
					}
					closA := na.EpsClosure([]nfa.StateID{ta.To}, scratchA)
					closB := nb.EpsClosure([]nfa.StateID{tb.To}, scratchB)
					for _, qa := range closA {
						for _, qb := range closB {
							if push(pair{qa, qb}, 1) {
								return true, nil
							}
						}
					}
				}
			}
		}
	}
	return false, nil
}

// classAppearsIn reports whether any byte of x can occur anywhere in a
// word of L(b): it intersects x with every consuming transition of B's
// NFA. This implements the §IV-B condition "the characters in X cannot
// appear in B" — if one did, the gap fragment .*[X] would clear the guard
// bit while B itself is being matched, suppressing every match.
func classAppearsIn(x regexparse.Class, b *regexparse.Node) (bool, error) {
	nb, err := nfa.BuildSingle(b)
	if err != nil {
		return false, err
	}
	for i := range nb.States {
		for _, t := range nb.States[i].Trans {
			if !t.Class.Intersect(x).IsEmpty() {
				return true, nil
			}
		}
	}
	return false, nil
}

// classInFinalPosition reports whether a word of L(a) can end with a byte
// of x: it looks for a transition into an accept-closure state whose class
// meets x. This implements the §IV-B condition that X may appear only in
// non-final positions of A — a final X byte would require the filter to
// set and clear the same bit simultaneously, which the action model cannot
// express, so such decompositions are refused.
func classInFinalPosition(x regexparse.Class, a *regexparse.Node) (bool, error) {
	na, err := nfa.BuildSingle(a)
	if err != nil {
		return false, err
	}
	seen := make([]bool, na.NumStates())
	acceptish := make([]bool, na.NumStates())
	for s := range na.States {
		for _, q := range na.EpsClosure([]nfa.StateID{nfa.StateID(s)}, seen) {
			if len(na.States[q].Matches) > 0 {
				acceptish[s] = true
				break
			}
		}
	}
	for i := range na.States {
		for _, t := range na.States[i].Trans {
			if acceptish[t.To] && !t.Class.Intersect(x).IsEmpty() {
				return true, nil
			}
		}
	}
	return false, nil
}
