// Package pcap reads and writes classic libpcap capture files and
// encodes/decodes the Ethernet/IPv4/TCP framing the traces use. The
// paper's throughput experiments (Figure 4) run over packet-level .pcap
// traces, "not pre-assembled flows": this package supplies that substrate
// so the flow-reassembly path is exercised exactly as in the paper, with
// synthesized traces standing in for the unavailable DARPA/CDX/Nitroba
// captures (see DESIGN.md).
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MagicLE is the classic pcap magic number in little-endian byte order
// with microsecond timestamps.
const MagicLE = 0xa1b2c3d4

// LinkTypeEthernet is the only link type this package produces or
// understands.
const LinkTypeEthernet = 1

// SnapLen is the capture length written to generated files; packets are
// never truncated.
const SnapLen = 65535

// Errors returned by the reader.
var (
	ErrBadMagic    = errors.New("pcap: unrecognized magic number")
	ErrShortHeader = errors.New("pcap: truncated header")
)

// Packet is one captured frame with its capture timestamp.
type Packet struct {
	TsSec  uint32
	TsUsec uint32
	Data   []byte
}

// Writer emits a classic pcap stream.
type Writer struct {
	w     io.Writer
	wrote bool
}

// NewWriter returns a Writer that will lazily emit the global header
// before the first packet.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (pw *Writer) writeGlobalHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], MagicLE)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	binary.LittleEndian.PutUint32(hdr[16:], SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket appends one frame.
func (pw *Writer) WritePacket(p Packet) error {
	if !pw.wrote {
		if err := pw.writeGlobalHeader(); err != nil {
			return fmt.Errorf("pcap: global header: %w", err)
		}
		pw.wrote = true
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], p.TsSec)
	binary.LittleEndian.PutUint32(hdr[4:], p.TsUsec)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.Data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: packet header: %w", err)
	}
	if _, err := pw.w.Write(p.Data); err != nil {
		return fmt.Errorf("pcap: packet data: %w", err)
	}
	return nil
}

// Reader parses a classic pcap stream. Both byte orders are accepted.
type Reader struct {
	r         io.Reader
	byteOrder binary.ByteOrder
	linkType  uint32
}

// NewReader validates the global header and returns a packet reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShortHeader, err)
	}
	pr := &Reader{r: r}
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case MagicLE:
		pr.byteOrder = binary.LittleEndian
	case 0xd4c3b2a1:
		pr.byteOrder = binary.BigEndian
	default:
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, binary.LittleEndian.Uint32(hdr[0:]))
	}
	pr.linkType = pr.byteOrder.Uint32(hdr[20:])
	return pr, nil
}

// LinkType returns the capture's link type.
func (pr *Reader) LinkType() uint32 { return pr.linkType }

// Next returns the next packet, or io.EOF at the end of the stream.
func (pr *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %v", ErrShortHeader, err)
	}
	inclLen := pr.byteOrder.Uint32(hdr[8:])
	if inclLen > 16*1024*1024 {
		return Packet{}, fmt.Errorf("pcap: implausible packet length %d", inclLen)
	}
	data := make([]byte, inclLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: truncated packet: %w", err)
	}
	return Packet{
		TsSec:  pr.byteOrder.Uint32(hdr[0:]),
		TsUsec: pr.byteOrder.Uint32(hdr[4:]),
		Data:   data,
	}, nil
}
