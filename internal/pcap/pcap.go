// Package pcap reads and writes classic libpcap capture files and
// encodes/decodes the Ethernet/IPv4/TCP framing the traces use. The
// paper's throughput experiments (Figure 4) run over packet-level .pcap
// traces, "not pre-assembled flows": this package supplies that substrate
// so the flow-reassembly path is exercised exactly as in the paper, with
// synthesized traces standing in for the unavailable DARPA/CDX/Nitroba
// captures (see DESIGN.md).
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MagicLE is the classic pcap magic number in little-endian byte order
// with microsecond timestamps.
const MagicLE = 0xa1b2c3d4

// LinkTypeEthernet is the only link type this package produces or
// understands.
const LinkTypeEthernet = 1

// SnapLen is the capture length written to generated files; packets are
// never truncated.
const SnapLen = 65535

// Typed errors for malformed captures. Hostile or damaged input is an
// expected condition for a DPI front-end, so every parse failure is a
// typed, wrapped error — never a panic — and callers can distinguish
// "skip this record and keep going" from "the stream is unusable".
var (
	// ErrBadMagic means the global header is not a classic pcap header;
	// the stream is unusable.
	ErrBadMagic = errors.New("pcap: unrecognized magic number")
	// ErrShortHeader means the global header was truncated; the stream
	// is unusable.
	ErrShortHeader = errors.New("pcap: truncated header")
	// ErrBadLinkType means the capture's link type is not Ethernet, the
	// only framing this package decodes.
	ErrBadLinkType = errors.New("pcap: unsupported link type")
	// ErrTruncatedFrame wraps any frame cut short of its declared or
	// minimum length — a truncated record body at end of stream, or an
	// Ethernet/IPv4/TCP frame shorter than its headers claim.
	ErrTruncatedFrame = errors.New("pcap: truncated frame")
	// ErrBadRecord wraps a per-packet record header whose fields are
	// implausible (e.g. a multi-gigabyte length); the stream cannot be
	// resynchronized past it.
	ErrBadRecord = errors.New("pcap: bad packet record")
)

// Packet is one captured frame with its capture timestamp.
type Packet struct {
	TsSec  uint32
	TsUsec uint32
	Data   []byte
}

// Owner is the release hook of a leased payload buffer. Front-ends that
// lease frame buffers from a pool (internal/input's arena) pass the
// lease along with the decoded segment; the consumer — internal/engine's
// shards — calls Release exactly once, after the payload bytes can no
// longer be referenced (the assembler copies any bytes it must retain,
// so "after HandleSegment returned" is that point). A nil Owner means
// the buffer is garbage-collected, which is the legacy allocate-per-
// packet path.
type Owner interface{ Release() }

// Writer emits a classic pcap stream.
type Writer struct {
	w     io.Writer
	wrote bool
}

// NewWriter returns a Writer that will lazily emit the global header
// before the first packet.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (pw *Writer) writeGlobalHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], MagicLE)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	binary.LittleEndian.PutUint32(hdr[16:], SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket appends one frame.
func (pw *Writer) WritePacket(p Packet) error {
	if !pw.wrote {
		if err := pw.writeGlobalHeader(); err != nil {
			return fmt.Errorf("pcap: global header: %w", err)
		}
		pw.wrote = true
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], p.TsSec)
	binary.LittleEndian.PutUint32(hdr[4:], p.TsUsec)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.Data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: packet header: %w", err)
	}
	if _, err := pw.w.Write(p.Data); err != nil {
		return fmt.Errorf("pcap: packet data: %w", err)
	}
	return nil
}

// Reader parses a classic pcap stream. Both byte orders are accepted.
type Reader struct {
	r         io.Reader
	byteOrder binary.ByteOrder
	linkType  uint32
	alloc     func(int) []byte
}

// NewReader validates the global header and returns a packet reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrShortHeader, err)
	}
	pr := &Reader{r: r}
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case MagicLE:
		pr.byteOrder = binary.LittleEndian
	case 0xd4c3b2a1:
		pr.byteOrder = binary.BigEndian
	default:
		return nil, fmt.Errorf("%w: %#x", ErrBadMagic, binary.LittleEndian.Uint32(hdr[0:]))
	}
	pr.linkType = pr.byteOrder.Uint32(hdr[20:])
	if pr.linkType != LinkTypeEthernet {
		return nil, fmt.Errorf("%w: %d (only Ethernet/%d is supported)", ErrBadLinkType, pr.linkType, LinkTypeEthernet)
	}
	return pr, nil
}

// LinkType returns the capture's link type.
func (pr *Reader) LinkType() uint32 { return pr.linkType }

// SetAlloc installs the allocator Next uses for packet bodies, letting
// callers serve Packet.Data from a leased pool buffer instead of a fresh
// allocation per record. alloc is called at most once per Next call;
// when the record body read fails afterwards, the returned Packet is
// empty and the caller owns reclaiming the leased buffer.
func (pr *Reader) SetAlloc(alloc func(int) []byte) { pr.alloc = alloc }

// Next returns the next packet, or io.EOF at the end of the stream.
func (pr *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: packet record header: %v", ErrTruncatedFrame, err)
	}
	inclLen := pr.byteOrder.Uint32(hdr[8:])
	if inclLen > 16*1024*1024 {
		return Packet{}, fmt.Errorf("%w: implausible packet length %d", ErrBadRecord, inclLen)
	}
	var data []byte
	if pr.alloc != nil {
		data = pr.alloc(int(inclLen))
	} else {
		data = make([]byte, inclLen)
	}
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Packet{}, fmt.Errorf("%w: packet body: %v", ErrTruncatedFrame, err)
	}
	return Packet{
		TsSec:  pr.byteOrder.Uint32(hdr[0:]),
		TsUsec: pr.byteOrder.Uint32(hdr[4:]),
		Data:   data,
	}, nil
}
