package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzPcapParse drives arbitrary bytes through the full capture parse
// path — NewReader, Next, DecodeTCP. The property under test is the
// package's robustness contract: hostile input never panics and every
// parse failure is one of the typed sentinels, so callers can always
// classify what went wrong.
func FuzzPcapParse(f *testing.F) {
	// Seed with a small valid capture so mutations explore the
	// near-valid space where parser bugs live.
	key := FlowKey{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 40000, DstPort: 80}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(Packet{Data: EncodeTCP(key, 1, FlagSYN, nil)}); err != nil {
		f.Fatal(err)
	}
	if err := w.WritePacket(Packet{Data: EncodeTCP(key, 1, FlagACK | FlagPSH, []byte("hello fuzzer"))}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated record body
	f.Add(valid[:24])           // header only
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrShortHeader) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrBadLinkType) {
				t.Fatalf("untyped NewReader error: %v", err)
			}
			return
		}
		for {
			pkt, err := pr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrTruncatedFrame) && !errors.Is(err, ErrBadRecord) {
					t.Fatalf("untyped Next error: %v", err)
				}
				return
			}
			if _, err := DecodeTCP(pkt.Data); err != nil {
				if !errors.Is(err, ErrNotTCP) && !errors.Is(err, ErrTruncatedFrame) {
					t.Fatalf("untyped DecodeTCP error: %v", err)
				}
			}
		}
	})
}
