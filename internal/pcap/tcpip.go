package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// FlowKey identifies one TCP direction: the classic 5-tuple with the
// protocol fixed to TCP, plus the tenant demux tag. Flow identity is
// (Tenant, 4-tuple): two tenants replaying overlapping address space can
// never collide in a flow table, and every segment of a flow carries the
// same tag so flow affinity holds per tenant.
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	// Tenant is the rule-set tenant this flow is served under: 0 is the
	// default (untenanted) rule set, nonzero indexes internal/tenant's
	// registry. DecodeTCP always leaves it 0 — the tag is assigned at
	// ingest (per-source binding or IP-range classification), never read
	// off the wire.
	Tenant uint32
}

// String renders "src:port->dst:port". It runs on the per-match path
// (event tracing, report lines), so it builds the string with strconv
// appends rather than fmt — roughly an order of magnitude cheaper.
func (k FlowKey) String() string {
	b := make([]byte, 0, 44) // worst case: two full IPv4s + two 5-digit ports
	b = appendIP(b, k.SrcIP)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(k.SrcPort), 10)
	b = append(b, '-', '>')
	b = appendIP(b, k.DstIP)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(k.DstPort), 10)
	return string(b)
}

func appendIP(b []byte, ip uint32) []byte {
	b = strconv.AppendUint(b, uint64(byte(ip>>24)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>16)), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(byte(ip>>8)), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, uint64(byte(ip)), 10)
}

// TCPFlags of interest to reassembly.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// Segment is one decoded TCP segment.
type Segment struct {
	Key     FlowKey
	Seq     uint32
	Flags   uint8
	Payload []byte
}

// ErrNotTCP marks frames that are not Ethernet/IPv4/TCP; callers skip
// them, as the scanners in the paper do for non-TCP traffic.
var ErrNotTCP = errors.New("pcap: not an IPv4/TCP frame")

const (
	etherTypeIPv4 = 0x0800
	protoTCP      = 6
	etherHdrLen   = 14
	ipv4MinHdrLen = 20
	tcpMinHdrLen  = 20
)

// DecodeTCP parses an Ethernet frame into a TCP segment. It returns
// ErrNotTCP (wrapped) for ARP, IPv6, UDP and other non-TCP frames, and
// ErrTruncatedFrame (wrapped) for frames cut short of or inconsistent
// with their own headers — never a panic, whatever the bytes.
func DecodeTCP(frame []byte) (Segment, error) {
	if len(frame) < etherHdrLen {
		return Segment{}, fmt.Errorf("%w: short ethernet frame (%d bytes)", ErrTruncatedFrame, len(frame))
	}
	if binary.BigEndian.Uint16(frame[12:]) != etherTypeIPv4 {
		return Segment{}, fmt.Errorf("%w: ethertype %#04x", ErrNotTCP, binary.BigEndian.Uint16(frame[12:]))
	}
	ip := frame[etherHdrLen:]
	if len(ip) < ipv4MinHdrLen {
		return Segment{}, fmt.Errorf("%w: short IPv4 header (%d bytes)", ErrTruncatedFrame, len(ip))
	}
	if ip[0]>>4 != 4 {
		return Segment{}, fmt.Errorf("%w: IP version %d", ErrNotTCP, ip[0]>>4)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4MinHdrLen || len(ip) < ihl {
		return Segment{}, fmt.Errorf("%w: bad IHL %d for %d bytes", ErrTruncatedFrame, ihl, len(ip))
	}
	if ip[9] != protoTCP {
		return Segment{}, fmt.Errorf("%w: protocol %d", ErrNotTCP, ip[9])
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:]))
	if totalLen < ihl || totalLen > len(ip) {
		return Segment{}, fmt.Errorf("%w: bad IPv4 total length %d for %d bytes", ErrTruncatedFrame, totalLen, len(ip))
	}
	tcp := ip[ihl:totalLen]
	if len(tcp) < tcpMinHdrLen {
		return Segment{}, fmt.Errorf("%w: short TCP header (%d bytes)", ErrTruncatedFrame, len(tcp))
	}
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < tcpMinHdrLen || dataOff > len(tcp) {
		return Segment{}, fmt.Errorf("%w: bad TCP data offset %d for %d bytes", ErrTruncatedFrame, dataOff, len(tcp))
	}
	return Segment{
		Key: FlowKey{
			SrcIP:   binary.BigEndian.Uint32(ip[12:]),
			DstIP:   binary.BigEndian.Uint32(ip[16:]),
			SrcPort: binary.BigEndian.Uint16(tcp[0:]),
			DstPort: binary.BigEndian.Uint16(tcp[2:]),
		},
		Seq:     binary.BigEndian.Uint32(tcp[4:]),
		Flags:   tcp[13],
		Payload: tcp[dataOff:],
	}, nil
}

// EncodeTCP builds an Ethernet/IPv4/TCP frame carrying payload. The MACs
// are fixed locally-administered addresses; checksums are left zero, as
// is common for synthesized captures (no stack will verify them).
func EncodeTCP(key FlowKey, seq uint32, flags uint8, payload []byte) []byte {
	ipLen := ipv4MinHdrLen + tcpMinHdrLen + len(payload)
	frame := make([]byte, etherHdrLen+ipLen)

	// Ethernet.
	copy(frame[0:6], []byte{0x02, 0, 0, 0, 0, 0x02})
	copy(frame[6:12], []byte{0x02, 0, 0, 0, 0, 0x01})
	binary.BigEndian.PutUint16(frame[12:], etherTypeIPv4)

	// IPv4.
	ip := frame[etherHdrLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:], uint16(ipLen))
	ip[8] = 64 // TTL
	ip[9] = protoTCP
	binary.BigEndian.PutUint32(ip[12:], key.SrcIP)
	binary.BigEndian.PutUint32(ip[16:], key.DstIP)

	// TCP.
	tcp := ip[ipv4MinHdrLen:]
	binary.BigEndian.PutUint16(tcp[0:], key.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], key.DstPort)
	binary.BigEndian.PutUint32(tcp[4:], seq)
	tcp[12] = (tcpMinHdrLen / 4) << 4
	tcp[13] = flags
	binary.BigEndian.PutUint16(tcp[14:], 65535) // window

	copy(tcp[tcpMinHdrLen:], payload)
	return frame
}
