package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pkts := []Packet{
		{TsSec: 1, TsUsec: 100, Data: []byte{1, 2, 3}},
		{TsSec: 2, TsUsec: 200, Data: []byte{}},
		{TsSec: 3, TsUsec: 300, Data: bytes.Repeat([]byte{0xab}, 1500)},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("link type %d", r.LinkType())
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.TsSec != want.TsSec || got.TsUsec != want.TsUsec || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("packet %d mismatch", i)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); !errors.Is(err, ErrShortHeader) {
		t.Fatalf("want ErrShortHeader, got %v", err)
	}
}

func TestTCPEncodeDecodeRoundTrip(t *testing.T) {
	key := FlowKey{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 12345, DstPort: 80}
	payload := []byte("GET / HTTP/1.1\r\n")
	frame := EncodeTCP(key, 4242, FlagACK|FlagPSH, payload)

	seg, err := DecodeTCP(frame)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Key != key {
		t.Errorf("key: got %v, want %v", seg.Key, key)
	}
	if seg.Seq != 4242 {
		t.Errorf("seq: %d", seg.Seq)
	}
	if seg.Flags != FlagACK|FlagPSH {
		t.Errorf("flags: %#x", seg.Flags)
	}
	if !bytes.Equal(seg.Payload, payload) {
		t.Errorf("payload mismatch: %q", seg.Payload)
	}
}

func TestDecodeNonTCP(t *testing.T) {
	// ARP ethertype.
	frame := EncodeTCP(FlowKey{}, 0, 0, nil)
	frame[12], frame[13] = 0x08, 0x06
	if _, err := DecodeTCP(frame); !errors.Is(err, ErrNotTCP) {
		t.Errorf("ARP: want ErrNotTCP, got %v", err)
	}
	// UDP protocol.
	frame = EncodeTCP(FlowKey{}, 0, 0, nil)
	frame[14+9] = 17
	if _, err := DecodeTCP(frame); !errors.Is(err, ErrNotTCP) {
		t.Errorf("UDP: want ErrNotTCP, got %v", err)
	}
	// Truncated.
	if _, err := DecodeTCP([]byte{1, 2, 3}); err == nil {
		t.Error("short frame should error")
	}
	// Corrupt IHL.
	frame = EncodeTCP(FlowKey{}, 0, 0, nil)
	frame[14] = 0x41
	if _, err := DecodeTCP(frame); err == nil {
		t.Error("bad IHL should error")
	}
}

func TestFlowKeyString(t *testing.T) {
	key := FlowKey{SrcIP: 0x0a000001, DstIP: 0xc0a80101, SrcPort: 1, DstPort: 2}
	want := "10.0.0.1:1->192.168.1.1:2"
	if got := key.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestSynthesizeStructure(t *testing.T) {
	payloads := [][]byte{
		bytes.Repeat([]byte("alpha "), 100),
		bytes.Repeat([]byte("beta "), 200),
		bytes.Repeat([]byte("gamma "), 50),
	}
	var buf bytes.Buffer
	if err := Synthesize(&buf, payloads, 256, 0.1, 7); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	perFlow := map[FlowKey][]Segment{}
	syns, fins := 0, 0
	for {
		pkt, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seg, err := DecodeTCP(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if seg.Flags&FlagSYN != 0 {
			syns++
		}
		if seg.Flags&FlagFIN != 0 {
			fins++
		}
		if len(seg.Payload) > 0 {
			perFlow[seg.Key] = append(perFlow[seg.Key], seg)
		}
	}
	if syns != len(payloads) || fins != len(payloads) {
		t.Errorf("syns=%d fins=%d, want %d each", syns, fins, len(payloads))
	}
	if len(perFlow) != len(payloads) {
		t.Fatalf("flows: %d", len(perFlow))
	}
	// Reassembling each flow by sequence number must reproduce its payload.
	for key, segs := range perFlow {
		buf := map[uint32][]byte{}
		total := 0
		for _, s := range segs {
			buf[s.Seq] = s.Payload
			total += len(s.Payload)
		}
		assembled := make([]byte, 0, total)
		seq := uint32(1)
		for len(assembled) < total {
			p, ok := buf[seq]
			if !ok {
				t.Fatalf("flow %v: gap at seq %d", key, seq)
			}
			assembled = append(assembled, p...)
			seq += uint32(len(p))
		}
		found := false
		for _, want := range payloads {
			if bytes.Equal(assembled, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("flow %v: reassembled payload matches no input", key)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	payloads := [][]byte{[]byte("hello world hello world")}
	var a, b bytes.Buffer
	if err := Synthesize(&a, payloads, 8, 0.3, 42); err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(&b, payloads, 8, 0.3, 42); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("synthesis must be deterministic in seed")
	}
}

// TestTypedDecodeErrors pins the malformed-input contract: every way a
// frame can be cut short or lie about its own lengths yields a wrapped
// ErrTruncatedFrame (and never a panic), while non-TCP traffic stays
// distinguishable as ErrNotTCP.
func TestTypedDecodeErrors(t *testing.T) {
	k := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	good := EncodeTCP(k, 1, FlagACK, []byte("payload"))
	if _, err := DecodeTCP(good); err != nil {
		t.Fatalf("control frame failed to decode: %v", err)
	}

	truncated := [][]byte{
		good[:5],                           // short ethernet
		good[:etherHdrLen+3],               // short IPv4
		good[:etherHdrLen+ipv4MinHdrLen+2], // short TCP
	}
	for i, f := range truncated {
		if _, err := DecodeTCP(f); !errors.Is(err, ErrTruncatedFrame) {
			t.Errorf("truncation %d: err = %v, want ErrTruncatedFrame", i, err)
		}
	}

	// Header fields inconsistent with the actual byte count.
	badIHL := append([]byte{}, good...)
	badIHL[etherHdrLen] = 0x4f // IHL 60 > frame
	if _, err := DecodeTCP(badIHL); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("bad IHL: err = %v, want ErrTruncatedFrame", err)
	}
	badLen := append([]byte{}, good...)
	badLen[etherHdrLen+2] = 0xff // IPv4 total length beyond frame
	badLen[etherHdrLen+3] = 0xff
	if _, err := DecodeTCP(badLen); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("bad total length: err = %v, want ErrTruncatedFrame", err)
	}
	badOff := append([]byte{}, good...)
	badOff[etherHdrLen+ipv4MinHdrLen+12] = 0xf0 // TCP data offset 60 > segment
	if _, err := DecodeTCP(badOff); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("bad data offset: err = %v, want ErrTruncatedFrame", err)
	}

	notTCP := append([]byte{}, good...)
	notTCP[etherHdrLen+9] = 17 // UDP
	if _, err := DecodeTCP(notTCP); !errors.Is(err, ErrNotTCP) {
		t.Errorf("UDP: err = %v, want ErrNotTCP", err)
	}
}

// TestReaderTypedErrors pins the record-level contract: bad link types,
// implausible record lengths, and truncated record bodies each surface
// as their typed error.
func TestReaderTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(Packet{Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	capture := buf.Bytes()

	// Non-Ethernet link type is refused up front.
	badLink := append([]byte{}, capture...)
	badLink[20] = 101 // LINKTYPE_RAW
	if _, err := NewReader(bytes.NewReader(badLink)); !errors.Is(err, ErrBadLinkType) {
		t.Errorf("bad link type: err = %v, want ErrBadLinkType", err)
	}

	// Record body cut short mid-stream.
	short := capture[:len(capture)-2]
	r, err := NewReader(bytes.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncatedFrame) {
		t.Errorf("truncated body: err = %v, want ErrTruncatedFrame", err)
	}

	// Implausible record length cannot be resynchronized.
	huge := append([]byte{}, capture...)
	huge[24+8] = 0xff // inclLen low byte (LE) — make it ~4 GB
	huge[24+9] = 0xff
	huge[24+10] = 0xff
	huge[24+11] = 0xff
	r, err = NewReader(bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrBadRecord) {
		t.Errorf("implausible length: err = %v, want ErrBadRecord", err)
	}
}
