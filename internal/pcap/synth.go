package pcap

import (
	"io"
	"math/rand"
)

// Synthesize writes a capture containing the given flow payloads as
// interleaved TCP streams: each payload is segmented at mss bytes, flows
// are multiplexed in randomized round-robin order (as concurrent
// connections appear on a link), and with probability oooProb a segment
// is emitted one position early, exercising the reassembler's
// out-of-order path. Sequence numbers start at 1 after an initial SYN,
// and each flow ends with FIN. Generation is deterministic in seed.
func Synthesize(w io.Writer, payloads [][]byte, mss int, oooProb float64, seed int64) error {
	if mss <= 0 {
		mss = 1460
	}
	rng := rand.New(rand.NewSource(seed))
	pw := NewWriter(w)

	flows := make([]*flowState, len(payloads))
	for i, p := range payloads {
		flows[i] = &flowState{
			key: FlowKey{
				SrcIP:   0x0a000000 | uint32(i+1), // 10.0.x.x clients
				DstIP:   0xc0a80101,               // 192.168.1.1 server
				SrcPort: uint16(20000 + i),
				DstPort: 80,
			},
			payload: p,
			// The SYN occupies sequence number 0; data starts at 1.
			seq: 0,
		}
	}

	ts := uint32(0)
	usec := uint32(0)
	emit := func(fs *flowState, flags uint8, chunk []byte) error {
		usec += 50 + uint32(rng.Intn(400))
		if usec >= 1_000_000 {
			usec -= 1_000_000
			ts++
		}
		frame := EncodeTCP(fs.key, fs.seq, flags, chunk)
		return pw.WritePacket(Packet{TsSec: ts, TsUsec: usec, Data: frame})
	}

	// SYNs first, as captures of fresh connections look.
	for _, fs := range flows {
		if err := emit(fs, FlagSYN, nil); err != nil {
			return err
		}
		fs.seq = 1
	}

	remaining := len(flows)
	var held *flowState // a segment delayed to create reordering
	var heldSeq uint32
	var heldChunk []byte
	for remaining > 0 {
		fs := flows[rng.Intn(len(flows))]
		if fs.done {
			continue
		}
		if fs.off >= len(fs.payload) {
			if err := emit(fs, FlagFIN|FlagACK, nil); err != nil {
				return err
			}
			fs.done = true
			remaining--
			continue
		}
		end := fs.off + mss
		if end > len(fs.payload) {
			end = len(fs.payload)
		}
		chunk := fs.payload[fs.off:end]
		seq := fs.seq
		fs.off = end
		fs.seq += uint32(len(chunk))

		if held == nil && oooProb > 0 && rng.Float64() < oooProb && fs.off < len(fs.payload) {
			// Hold this segment; its successor will be emitted first.
			held, heldSeq, heldChunk = fs, seq, chunk
			continue
		}
		fs2 := fs
		if err := emitSeg(emit, fs2, seq, chunk); err != nil {
			return err
		}
		if held != nil {
			if err := emitSeg(emit, held, heldSeq, heldChunk); err != nil {
				return err
			}
			held = nil
		}
	}
	if held != nil {
		if err := emitSeg(emit, held, heldSeq, heldChunk); err != nil {
			return err
		}
	}
	return nil
}

// emitSeg emits a data segment with an explicit sequence number.
func emitSeg(emit func(*flowState, uint8, []byte) error, fs *flowState, seq uint32, chunk []byte) error {
	saved := fs.seq
	fs.seq = seq
	err := emit(fs, FlagACK|FlagPSH, chunk)
	fs.seq = saved
	return err
}

// flowState tracks one synthesized TCP stream's emission progress.
type flowState struct {
	key     FlowKey
	payload []byte
	off     int
	seq     uint32
	done    bool
}
