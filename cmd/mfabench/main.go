// Command mfabench regenerates the paper's evaluation: Tables I and V
// and Figures 2-5. Each experiment prints the same rows or series the
// paper reports; EXPERIMENTS.md interprets the expected shapes.
//
// Usage:
//
//	mfabench -exp all
//	mfabench -exp table5 -sets C7p,C8
//	mfabench -exp fig4 -scale 0.25    # smaller traces, faster run
//	mfabench -exp fig5 -bytes 524288
//	mfabench -exp layout -json layout.json    # flat/classed/classed2 + batching
//	mfabench -exp engine -json results.json   # machine-readable rows too
//	mfabench -exp engine -batch 8             # batched rows at lockstep width 8
//
// -json writes the raw measurement rows of the row-producing experiments
// (fig4, fig5, active, layout, engine) as one JSON document ("-" for
// stdout) in addition to the printed tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"matchfilter/internal/bench"
	"matchfilter/internal/patterns"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mfabench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: table1, table2, table5, fig2, fig3, fig4, fig5, active, prefilter, layout, counters, engine, all")
	setsFlag := flag.String("sets", "", "comma-separated pattern sets (default: all seven)")
	scale := flag.Float64("scale", 0.25, "trace size scale for fig4 and engine")
	bytesN := flag.Int("bytes", 1<<20, "stream length per measurement for fig5")
	seed := flag.Int64("seed", 1, "seed for fig5 traffic")
	shardsFlag := flag.String("shards", "1,2,4,8", "shard counts for the engine experiment")
	batchK := flag.Int("batch", 16, "lockstep width for the engine experiment's batched rows (0 or 1 disables)")
	jsonOut := flag.String("json", "", "also write raw measurement rows as JSON to this file (- for stdout)")
	flag.Parse()

	var sets []string
	if *setsFlag != "" {
		sets = strings.Split(*setsFlag, ",")
	}

	wants := func(name string) bool { return *exp == "all" || *exp == name }
	out := os.Stdout
	var report bench.JSONReport

	if wants("table1") {
		if err := bench.TableI(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if wants("table2") {
		if err := bench.TablesIIToIV(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if wants("prefilter") {
		if err := bench.PrefilterComparison(out, sets, *bytesN/4, *seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if wants("layout") {
		rows, err := bench.LayoutComparison(out, sets, *bytesN, *seed)
		if err != nil {
			return err
		}
		report.AddLayout(rows)
		fmt.Fprintln(out)
	}

	if wants("counters") {
		// The counter experiment runs its own sets (the CTR family) —
		// the Table V sets carry no bounded repeats — so -sets only
		// applies when it names CTR sets explicitly.
		ctrSets := sets
		if *exp == "all" {
			ctrSets = nil
		}
		rows, err := bench.CounterComparison(out, ctrSets, *bytesN, *seed)
		if err != nil {
			return err
		}
		report.AddCounters(rows)
		fmt.Fprintln(out)
	}

	needsBuild := wants("table5") || wants("fig2") || wants("fig3") ||
		wants("fig4") || wants("fig5") || wants("active") || wants("engine")
	if !needsBuild {
		return writeJSONReport(*jsonOut, &report)
	}

	fmt.Fprintf(out, "building engines for %s...\n", setsOrAll(sets))
	start := time.Now()
	engines, err := bench.BuildAll(sets)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "built in %v\n\n", time.Since(start))

	if wants("table5") {
		if err := bench.TableV(out, engines); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if wants("fig2") {
		if err := bench.Figure2(out, engines); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if wants("fig3") {
		if err := bench.Figure3(out, engines); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if wants("fig4") {
		rows, err := bench.Figure4(out, engines, bench.DefaultTraces(*scale))
		if err != nil {
			return err
		}
		report.AddTraces(rows)
		fmt.Fprintln(out)
	}
	if wants("fig5") {
		rows, err := bench.Figure5(out, engines, *bytesN, *seed)
		if err != nil {
			return err
		}
		report.AddSynthetic(rows)
		fmt.Fprintln(out)
	}
	if wants("active") {
		rows, err := bench.ActiveStates(out, engines, *bytesN/4, *seed)
		if err != nil {
			return err
		}
		report.AddActiveStates(rows)
		fmt.Fprintln(out)
	}
	if wants("engine") {
		counts, err := parseShards(*shardsFlag)
		if err != nil {
			return err
		}
		rows, err := bench.EngineScaling(out, engines, bench.EngineTrace(*scale), counts, *batchK)
		if err != nil {
			return err
		}
		report.AddEngineScaling(rows)
	}
	return writeJSONReport(*jsonOut, &report)
}

// writeJSONReport writes the accumulated rows when -json was given.
// path "" disables, "-" selects stdout.
func writeJSONReport(path string, report *bench.JSONReport) error {
	switch path {
	case "":
		return nil
	case "-":
		return report.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseShards(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -shards value %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func setsOrAll(sets []string) string {
	if len(sets) == 0 {
		return strings.Join(patterns.Names(), ",")
	}
	return strings.Join(sets, ",")
}
