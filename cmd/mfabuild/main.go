// Command mfabuild compiles a pattern set into a Match Filtering
// Automaton and prints its construction statistics (the per-set numbers
// behind Table V and Figures 2-3).
//
// Usage:
//
//	mfabuild -set C7p                 # a built-in Table V set
//	mfabuild -rules rules.txt         # one pattern per line, # comments
//	mfabuild -set S24 -filters        # additionally dump the filter program
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/regexparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mfabuild:", err)
		os.Exit(1)
	}
}

func run() error {
	set := flag.String("set", "", "built-in pattern set name ("+strings.Join(patterns.Names(), ", ")+")")
	rulesFile := flag.String("rules", "", "file with one pattern per line (# starts a comment)")
	showFilters := flag.Bool("filters", false, "dump the generated filter program")
	showFragments := flag.Bool("fragments", false, "list the decomposed fragments")
	maxStates := flag.Int("max-states", 0, "DFA state budget (0 = default)")
	layout := flag.String("layout", "", "transition-table layout: flat, classed, classed2 (empty = auto; classed2 falls back to classed when its pair table would exceed the build cap)")
	output := flag.String("o", "", "write the compiled engine to this file for mfascan -engine")
	check := flag.Bool("check", true, "self-check the compiled automaton (scan a built-in trace, round-trip a flow context) before reporting or writing it")
	counters := flag.Bool("counters", false, "compile large bounded repeats X{n,m} to filter counter registers instead of state expansion")
	flag.Parse()

	rules, sources, err := loadRules(*set, *rulesFile)
	if err != nil {
		return err
	}

	opts := core.Options{}
	opts.Splitter.EnableCounters = *counters
	opts.DFA.MaxStates = *maxStates
	if *layout != "" {
		l, err := dfa.ParseLayout(*layout)
		if err != nil {
			return err
		}
		opts.DFA.Layout = l
	}
	m, err := core.Compile(rules, opts)
	if err != nil {
		return err
	}
	if *check {
		if err := m.SelfCheck(); err != nil {
			return err
		}
	}

	st := m.Stats()
	fmt.Printf("patterns:        %d\n", st.NumRules)
	fmt.Printf("fragments:       %d (decomposed rules: %d)\n", st.NumFragments, st.Split.RulesDecomposed)
	fmt.Printf("  dot-star splits:        %d\n", st.Split.DotStarSplits)
	fmt.Printf("  almost-dot-star splits: %d\n", st.Split.AlmostSplits)
	fmt.Printf("  refused (overlap/infix/class/X-in-B/X-final/cascade): %d/%d/%d/%d/%d/%d\n",
		st.Split.RefusedOverlap, st.Split.RefusedInfix, st.Split.RefusedClassSize,
		st.Split.RefusedXInB, st.Split.RefusedXFinalInA, st.Split.RefusedCascade)
	if *counters {
		fmt.Printf("  counter splits: %d (refused X-in-B/span: %d/%d)\n",
			st.Split.CounterSplits, st.Split.RefusedCounterXInB, st.Split.RefusedCounterSpan)
		fmt.Printf("counters:        %d\n", st.Counters)
	}
	fmt.Printf("NFA states:      %d\n", st.NFAStates)
	fmt.Printf("MFA states:      %d\n", st.DFAStates)
	fmt.Printf("table layout:    %s (%d classes, table %.3f MB)\n",
		st.DFALayout, st.DFAClasses, mb(st.DFATableBytes))
	fmt.Printf("memory bits (w): %d\n", st.MemBits)
	fmt.Printf("internal ids:    %d\n", st.InternalIDs)
	fmt.Printf("image:           %.3f MB (DFA %.3f MB + filters %.4f MB)\n",
		mb(st.MemoryImageBytes()), mb(st.DFABytes), mb(st.FilterBytes))
	fmt.Printf("build time:      %v (split %v, subset construction %v)\n",
		st.BuildTime, st.SplitTime, st.DFATime)

	if *showFragments {
		fmt.Println("\nrules:")
		for i, src := range sources {
			fmt.Printf("  %3d: %s\n", i+1, src)
		}
	}
	if *showFilters {
		fmt.Println("\nfilter program:")
		fmt.Print(m.Program().String())
	}
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := core.WriteStrings(f, sources); err != nil {
			return err
		}
		if _, err := m.WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("engine written to %s\n", *output)
	}
	return nil
}

func mb(n int) float64 { return float64(n) / (1 << 20) }

func loadRules(set, rulesFile string) ([]core.Rule, []string, error) {
	switch {
	case set != "" && rulesFile != "":
		return nil, nil, fmt.Errorf("use either -set or -rules, not both")
	case set != "":
		prules, err := patterns.Load(set)
		if err != nil {
			return nil, nil, err
		}
		rules := make([]core.Rule, len(prules))
		sources := make([]string, len(prules))
		for i, r := range prules {
			rules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
			sources[i] = r.Source
		}
		return rules, sources, nil
	case rulesFile != "":
		return readRulesFile(rulesFile)
	default:
		return nil, nil, fmt.Errorf("one of -set or -rules is required")
	}
}

func readRulesFile(path string) ([]core.Rule, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	var rules []core.Rule
	var sources []string
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := regexparse.ParsePCRE(line)
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		rules = append(rules, core.Rule{Pattern: p, ID: int32(len(rules) + 1)})
		sources = append(sources, line)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(rules) == 0 {
		return nil, nil, fmt.Errorf("%s: no patterns", path)
	}
	return rules, sources, nil
}
