// Command mfascan scans input with a compiled pattern set and reports
// every confirmed match. Input is either a pcap capture (full
// Ethernet/IPv4/TCP decode with flow reassembly, the paper's Figure 4
// path) or a raw byte stream treated as a single flow.
//
// Malformed frames and records are skipped and counted by default;
// -strict aborts on the first one with exit code 2.
//
// -stats-json dumps the final scan statistics as a JSON document (to
// stdout with "-", else to the named file) for scripted consumers; the
// human-readable summary still goes to stdout.
//
// Usage:
//
//	mfascan -set S24 -pcap trace.pcap
//	mfascan -rules rules.txt -raw payload.bin
//	tracegen -set S24 -out - | mfascan -set S24 -pcap -
//	mfascan -set C8 -pcap trace.pcap -q -stats-json stats.json
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/flow"
	"matchfilter/internal/patterns"
	"matchfilter/internal/pcap"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/telemetry"
)

const (
	exitError  = 1 // generic operational error
	exitStrict = 2 // -strict: first malformed frame/record
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfascan:", err)
		if code == 0 {
			code = exitError
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	set := flag.String("set", "", "built-in pattern set name ("+strings.Join(patterns.Names(), ", ")+")")
	rulesFile := flag.String("rules", "", "file with one pattern per line")
	engineFile := flag.String("engine", "", "load a compiled engine written by mfabuild -o")
	pcapPath := flag.String("pcap", "", "pcap file to scan (- for stdin)")
	rawPath := flag.String("raw", "", "raw payload file to scan as one flow (- for stdin)")
	strict := flag.Bool("strict", false, "abort on the first malformed frame or record (exit code 2) instead of skip-and-count")
	quiet := flag.Bool("q", false, "suppress per-match lines, print only the summary")
	statsJSON := flag.String("stats-json", "", "write final scan stats as JSON to this file (- for stdout)")
	counters := flag.Bool("counters", false, "compile large bounded repeats X{n,m} to filter counter registers instead of state expansion")
	flag.Parse()

	var m *core.MFA
	var sources []string
	if *engineFile != "" {
		if *set != "" || *rulesFile != "" {
			return exitError, fmt.Errorf("-engine replaces -set/-rules")
		}
		f, err := os.Open(*engineFile)
		if err != nil {
			return exitError, err
		}
		defer f.Close()
		br := bufio.NewReaderSize(f, 1<<20)
		sources, err = core.ReadStrings(br)
		if err != nil {
			return exitError, err
		}
		m, err = core.ReadMFA(br)
		if err != nil {
			return exitError, err
		}
	} else {
		rules, srcs, err := loadRules(*set, *rulesFile)
		if err != nil {
			return exitError, err
		}
		sources = srcs
		var opts core.Options
		opts.Splitter.EnableCounters = *counters
		m, err = core.Compile(rules, opts)
		if err != nil {
			return exitError, err
		}
	}

	switch {
	case *pcapPath != "" && *rawPath != "":
		return exitError, fmt.Errorf("use either -pcap or -raw, not both")
	case *pcapPath != "":
		report, err := scanPcap(m, sources, *pcapPath, *strict, *quiet)
		if err != nil {
			var me *malformedError
			if errors.As(err, &me) {
				return exitStrict, err
			}
			return exitError, err
		}
		if err := writeStatsJSON(*statsJSON, report); err != nil {
			return exitError, err
		}
		return 0, nil
	case *rawPath != "":
		report, err := scanRaw(m, sources, *rawPath, *quiet)
		if err != nil {
			return exitError, err
		}
		if err := writeStatsJSON(*statsJSON, report); err != nil {
			return exitError, err
		}
		return 0, nil
	default:
		return exitError, fmt.Errorf("one of -pcap or -raw is required")
	}
}

// writeStatsJSON dumps the final stats through the telemetry JSON
// writer, so every machine-readable surface in the repository formats
// alike. path "" disables, "-" selects stdout.
func writeStatsJSON(path string, v any) error {
	switch path {
	case "":
		return nil
	case "-":
		return telemetry.WriteJSONValue(os.Stdout, v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONValue(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pcapReport is the -stats-json document for a pcap scan: the full
// reassembly stats plus scan-level outcomes.
type pcapReport struct {
	Mode string `json:"mode"` // "pcap"
	flow.Stats
	Matches   int64   `json:"matches"`
	Malformed int64   `json:"malformed"`
	ElapsedNs int64   `json:"elapsed_ns"`
	MBPerSec  float64 `json:"mb_per_s"`
}

// rawReport is the -stats-json document for a raw single-flow scan.
type rawReport struct {
	Mode      string  `json:"mode"` // "raw"
	Bytes     int64   `json:"bytes"`
	Matches   int64   `json:"matches"`
	ElapsedNs int64   `json:"elapsed_ns"`
	MBPerSec  float64 `json:"mb_per_s"`
}

func openInput(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(bufio.NewReader(os.Stdin)), nil
	}
	return os.Open(path)
}

// malformedError marks an abort caused by malformed capture input, so
// run can map it to the strict-mode exit code rather than the generic
// one.
type malformedError struct{ err error }

func (e *malformedError) Error() string { return e.err.Error() }
func (e *malformedError) Unwrap() error { return e.err }

func scanPcap(m *core.MFA, sources []string, path string, strict, quiet bool) (*pcapReport, error) {
	in, err := openInput(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()

	var matches int64
	asm := flow.NewAssembler(flow.Config{},
		func() flow.Runner { return m.NewRunner() },
		func(mt flow.Match) {
			matches++
			if !quiet {
				fmt.Printf("%s offset %d: rule %d (%s)\n",
					mt.Flow, mt.Pos, mt.ID, sources[mt.ID-1])
			}
		})

	start := time.Now()
	pr, err := pcap.NewReader(bufio.NewReaderSize(in, 1<<20))
	if err != nil {
		return nil, &malformedError{err}
	}
	var malformed int64
	for {
		pkt, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if strict {
				return nil, &malformedError{err}
			}
			// Record-level damage cannot be resynced past: count it and
			// treat the remainder as unreadable.
			malformed++
			fmt.Fprintf(os.Stderr, "mfascan: capture unreadable past this point, stopping: %v\n", err)
			break
		}
		if err := asm.HandleFrame(pkt.Data); err != nil {
			if strict {
				return nil, &malformedError{err}
			}
			malformed++ // malformed frame: skip and keep scanning
		}
	}
	elapsed := time.Since(start)
	stats := asm.Stats()
	mbps := float64(stats.PayloadBytes) / (1 << 20) / elapsed.Seconds()
	fmt.Printf("scanned %d TCP packets, %d payload bytes in %v (%.1f MB/s)\n",
		stats.Packets, stats.PayloadBytes, elapsed, mbps)
	fmt.Printf("out-of-order segments: %d, dropped: %d, non-TCP frames: %d, malformed: %d\n",
		stats.OutOfOrder, stats.DroppedSegs, stats.SkippedFrames, malformed)
	fmt.Printf("confirmed matches: %d\n", matches)
	return &pcapReport{
		Mode:      "pcap",
		Stats:     stats,
		Matches:   matches,
		Malformed: malformed,
		ElapsedNs: elapsed.Nanoseconds(),
		MBPerSec:  mbps,
	}, nil
}

func scanRaw(m *core.MFA, sources []string, path string, quiet bool) (*rawReport, error) {
	in, err := openInput(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()

	r := m.NewRunner()
	var matches int64
	onMatch := func(id int32, pos int64) {
		matches++
		if !quiet {
			fmt.Printf("offset %d: rule %d (%s)\n", pos, id, sources[id-1])
		}
	}
	buf := make([]byte, 1<<20)
	start := time.Now()
	var total int64
	for {
		n, err := in.Read(buf)
		if n > 0 {
			total += int64(n)
			r.Feed(buf[:n], onMatch)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	mbps := float64(total) / (1 << 20) / elapsed.Seconds()
	fmt.Printf("scanned %d bytes in %v (%.1f MB/s), confirmed matches: %d\n",
		total, elapsed, mbps, matches)
	return &rawReport{
		Mode:      "raw",
		Bytes:     total,
		Matches:   matches,
		ElapsedNs: elapsed.Nanoseconds(),
		MBPerSec:  mbps,
	}, nil
}

func loadRules(set, rulesFile string) ([]core.Rule, []string, error) {
	switch {
	case set != "" && rulesFile != "":
		return nil, nil, fmt.Errorf("use either -set or -rules, not both")
	case set != "":
		prules, err := patterns.Load(set)
		if err != nil {
			return nil, nil, err
		}
		rules := make([]core.Rule, len(prules))
		sources := make([]string, len(prules))
		for i, r := range prules {
			rules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
			sources[i] = r.Source
		}
		return rules, sources, nil
	case rulesFile != "":
		f, err := os.Open(rulesFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		var rules []core.Rule
		var sources []string
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			p, err := regexparse.ParsePCRE(line)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", rulesFile, err)
			}
			rules = append(rules, core.Rule{Pattern: p, ID: int32(len(rules) + 1)})
			sources = append(sources, line)
		}
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		if len(rules) == 0 {
			return nil, nil, fmt.Errorf("%s: no patterns", rulesFile)
		}
		return rules, sources, nil
	default:
		return nil, nil, fmt.Errorf("one of -set or -rules is required")
	}
}
