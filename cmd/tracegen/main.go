// Command tracegen synthesizes evaluation traffic: multi-flow TCP pcap
// captures in the style of the paper's real-life traces (Figure 4), or
// raw Becchi-style difficulty-pM streams (Figure 5).
//
// Usage:
//
//	tracegen -set S24 -profile LL1 -out trace.pcap
//	tracegen -set C8 -pm 0.75 -bytes 1048576 -out stream.bin
//	tracegen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"matchfilter/internal/bench"
	"matchfilter/internal/core"
	"matchfilter/internal/patterns"
	"matchfilter/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	set := flag.String("set", "", "pattern set the traffic targets ("+strings.Join(patterns.Names(), ", ")+")")
	profile := flag.String("profile", "", "pcap profile name (LL1 LL2 LL3 C11 C12 C13 N)")
	scale := flag.Float64("scale", 1.0, "scale factor for profile sizes")
	pm := flag.Float64("pm", -2, "generate a raw pM-difficulty stream instead of a pcap (-1 = random)")
	bytesN := flag.Int("bytes", 1<<20, "stream length for -pm mode")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("out", "-", "output file (- for stdout)")
	list := flag.Bool("list", false, "list available profiles and sets")
	flag.Parse()

	if *list {
		fmt.Println("pattern sets:")
		for _, info := range patterns.Describe() {
			fmt.Printf("  %-6s %3d rules  %s\n", info.Name, info.NumRules, info.Description)
		}
		fmt.Println("pcap profiles:")
		for _, p := range bench.DefaultTraces(1) {
			fmt.Printf("  %-4s %2d flows x %6d bytes, mss %4d, ooo %.2f, density %.3f\n",
				p.Name, p.Flows, p.FlowBytes, p.MSS, p.OOOProb, p.WordProb)
		}
		return nil
	}
	if *set == "" {
		return fmt.Errorf("-set is required (or use -list)")
	}

	var data []byte
	switch {
	case *pm >= -1:
		stream, err := makeStream(*set, *pm, *bytesN, *seed)
		if err != nil {
			return err
		}
		data = stream
	case *profile != "":
		p, ok := findProfile(*profile, *scale)
		if !ok {
			return fmt.Errorf("unknown profile %q", *profile)
		}
		p.Seed = *seed
		pcapBytes, err := bench.SynthesizeTrace(p, *set)
		if err != nil {
			return err
		}
		data = pcapBytes
	default:
		return fmt.Errorf("one of -profile or -pm is required")
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(data); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d bytes\n", len(data))
	return nil
}

func findProfile(name string, scale float64) (bench.TraceProfile, bool) {
	for _, p := range bench.DefaultTraces(scale) {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return bench.TraceProfile{}, false
}

func makeStream(set string, pm float64, n int, seed int64) ([]byte, error) {
	if pm < 0 {
		return trace.Random(n, seed), nil
	}
	prules, err := patterns.Load(set)
	if err != nil {
		return nil, err
	}
	rules := make([]core.Rule, len(prules))
	for i, r := range prules {
		rules[i] = core.Rule{Pattern: r.Pattern, ID: r.ID}
	}
	m, err := core.Compile(rules, core.Options{})
	if err != nil {
		return nil, err
	}
	return trace.NewGenerator(m.DFA(), seed).Generate(nil, n, pm), nil
}
