// Command mfaserve is the flow-scan daemon: it loads a compiled engine
// image (mfabuild -o) or compiles patterns, then scans traffic through
// the sharded concurrent engine (internal/engine), printing confirmed
// matches as they happen and a stats report at the end. It is the
// serving shape of the paper's §III-B claim: per-flow state is a tiny
// (q, m) context, so one process can track hundreds of thousands of
// concurrent flows across shards.
//
// Input pipeline (DESIGN.md §15): traffic arrives through internal/input
// sources running concurrently under one supervisor. -pcap FILE keeps the
// classic single-capture invocation ("-" reads stdin); the repeatable
// -source flag adds any mix of
//
//	-source pcap:PATH        capture file, or a glob scanned in parallel
//	-source spool:DIR        tail rotating capture files in a directory
//	-source tcp::9999        scan each accepted connection as one flow
//	-source udp::9999        scan each remote peer's datagrams as one flow
//	-source afpacket:eth0    live capture (Linux, needs CAP_NET_RAW)
//
// Each source owns a bounded handoff queue (-source-queue) into the
// engine, so a bursty source backpressures alone; a failing source is
// restarted with backoff and eventually abandoned while the others keep
// serving. Payload buffers are leased from a pooled arena and recycled
// by the engine after each scan.
//
// Robustness posture (DESIGN.md §10, §16): malformed frames and records
// are skipped and counted by default (-strict aborts on the first one
// with exit code 2); shard panics quarantine single flows under a crash
// budget; overload steps through the soft/hard degradation ladder; and
// shutdown is bounded by -drain-timeout. -stall-deadline arms a scan
// watchdog that poisons a flow stuck mid-scan and sheds traffic from a
// wedged shard; -max-memory caps buffered payload memory end to end
// (sources pause leasing near the ceiling); an infinite source that
// keeps failing moves to a half-open circuit breaker instead of dying.
// The exit status reports serving health: 0 healthy, 1 operational
// error, 2 strict-mode parse abort, 3 at least one shard ended
// unhealthy.
//
// Observability (DESIGN.md §12): the daemon always instruments itself
// through internal/telemetry — the periodic -stats ticker renders from a
// registry snapshot — and -admin additionally serves the surface over
// HTTP: /metrics (Prometheus text), /statsz (JSON engine stats),
// /healthz (503 exactly when the exit code would be 3), /events (tail of
// the match-event ring) and /debug/pprof. The admin server drains
// gracefully under the same -drain-timeout bound as the engine.
//
// Multi-tenant serving (DESIGN.md §17): the repeatable -tenant flag
// declares independent rule sets served by one daemon —
//
//	mfaserve -set C8 \
//	  -tenant 'acme=acme-rules.txt,cidr=10.1.0.0/16,max-flows=50000' \
//	  -tenant 'globex=set:S24,max-buffered=64M' \
//	  -source 'udp::9999?tenant=acme' -admin :9090
//
// Traffic is tagged to a tenant at ingest: a ?tenant= source binding
// claims a whole source, cidr= rules classify mixed sources by IP
// range, and everything untagged scans against the default -set/-rules
// set. Each tenant hot-reloads independently (PUT
// /tenants/<id>/rules mirrors POST /reload's validation gate), carries
// its own quotas wired into the memory governor and degradation
// ladder, and gets tenant-labeled mfa_tenant_* metrics plus a private
// match ring at /tenants/<id>/events.
//
// Hot reload (DESIGN.md §14): SIGHUP or POST /reload re-reads the
// original -engine/-set/-rules source, validates the candidate (decode,
// compile, self-check scan), and swaps it in as a new pattern generation
// without dropping in-flight flows; -reload-policy picks whether those
// flows finish on the old generation (drain) or restart matching on the
// new one (reset). A reload that fails validation leaves the running
// generation untouched and bumps mfa_reload_failure_total.
//
// Usage:
//
//	mfabuild -set C8 -o c8.eng
//	mfaserve -engine c8.eng -pcap trace.pcap -shards 8
//	tracegen -set S24 -out - | mfaserve -set S24 -pcap - -stats 2s
//	mfaserve -rules rules.txt -pcap - -shards 4 -max-flows 100000 -idle 500000 -drop
//	mfaserve -set C8 -pcap - -admin 127.0.0.1:9090 & curl :9090/metrics
//	mfaserve -set C8 -source 'pcap:captures/*.pcap' -source tcp::9999
//	mfaserve -set C8 -source spool:/var/spool/pcap -source afpacket:eth0 -admin :9090
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/engine"
	"matchfilter/internal/flow"
	"matchfilter/internal/guard"
	"matchfilter/internal/input"
	"matchfilter/internal/patterns"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/telemetry"
	"matchfilter/internal/tenant"
)

// sourceSpecs collects the repeatable -source flag.
type sourceSpecs []string

func (s *sourceSpecs) String() string { return strings.Join(*s, ",") }
func (s *sourceSpecs) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// Exit codes: operational failures are distinguishable from input and
// health failures so supervisors can react differently.
const (
	exitOK        = 0
	exitError     = 1 // generic operational error
	exitStrict    = 2 // -strict: first malformed frame/record
	exitUnhealthy = 3 // a shard ended unhealthy (crash budget exhausted)
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mfaserve:", err)
		if code == exitOK {
			code = exitError
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	set := flag.String("set", "", "built-in pattern set name ("+strings.Join(patterns.Names(), ", ")+")")
	rulesFile := flag.String("rules", "", "file with one pattern per line (# starts a comment)")
	engineFile := flag.String("engine", "", "load a compiled engine written by mfabuild -o")
	pcapPath := flag.String("pcap", "-", "pcap input to scan (- for stdin); shorthand for -source pcap:PATH")
	var srcSpecs sourceSpecs
	flag.Var(&srcSpecs, "source", "input source, repeatable: pcap:PATH|GLOB, spool:DIR, tcp:ADDR, udp:ADDR, afpacket:IFACE; per-source options ride a query suffix: ?tenant=ID (bind all traffic to a tenant), ?rate=100M (replay rate limit), ?seq (udp: 4-byte sequence headers, gap/reorder accounting)")
	var tenSpecs sourceSpecs
	flag.Var(&tenSpecs, "tenant", "tenant rule set, repeatable: 'id=RULES.txt[,cidr=10.1.0.0/16][,max-flows=N][,max-buffered=SIZE]' (RULES may be set:NAME for a built-in set; cidr may repeat)")
	sourceQueue := flag.Int("source-queue", 256, "per-source handoff queue depth (segments)")
	shards := flag.Int("shards", 0, "shard goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 4096, "per-shard queue depth (segments)")
	layoutFlag := flag.String("layout", "", "transition-table layout for compiled sets: auto, flat, classed, classed2 (applies to -set/-rules, hot reloads and tenant rule sets; -engine images keep their baked layout)")
	batchFlows := flag.Int("batch-flows", 0, "scan up to this many flows per shard in lockstep (0 or 1 = scan-on-arrival; capped at 16, see DESIGN.md §18)")
	drop := flag.Bool("drop", false, "drop segments when a shard queue is full instead of applying backpressure")
	maxFlows := flag.Int("max-flows", 0, "per-shard flow-table cap, LRU-evicted (0 = unbounded)")
	idle := flag.Int64("idle", 0, "evict flows idle for this many segments (0 = never)")
	crashBudget := flag.Int("crash-budget", 0, "recovered panics before a shard is marked unhealthy (0 = default 8)")
	softMark := flag.Float64("soft-watermark", 0, "pressure threshold for soft degradation (0 = default 0.5)")
	hardMark := flag.Float64("hard-watermark", 0, "pressure threshold for hard degradation (0 = default 0.9)")
	maxMemory := flag.String("max-memory", "", "ceiling on buffered payload memory (arena leases + flow buffers + queued segments), e.g. 256M or 1G; sources pause leasing near the ceiling and the degradation ladder reacts to memory pressure (empty = unbounded)")
	stallDeadline := flag.Duration("stall-deadline", 0, "watchdog deadline for one segment scan: a scan stuck longer poisons its flow on recovery, 4x the deadline marks the shard wedged and sheds its traffic (0 = watchdog off)")
	drainTimeout := flag.Duration("drain-timeout", 0, "bound the shutdown drain; on expiry report per-shard progress and exit nonzero (0 = wait forever)")
	strict := flag.Bool("strict", false, "abort on the first malformed frame or record (exit code 2) instead of skip-and-count")
	statsEvery := flag.Duration("stats", 0, "print a stats line to stderr at this interval (0 = off)")
	quiet := flag.Bool("q", false, "suppress per-match lines, print only the report")
	adminAddr := flag.String("admin", "", "serve the admin HTTP surface (/metrics, /statsz, /healthz, /events, /reload, pprof) on this address, e.g. :9090 (empty = off)")
	eventsCap := flag.Int("events", 1024, "match-event ring capacity served by /events")
	reloadPolicy := flag.String("reload-policy", "drain", "in-flight flows on a pattern hot reload: drain (finish on the old generation) or reset (restart matching on the new one)")
	countersFlag := flag.Bool("counters", false, "compile large bounded repeats X{n,m} to filter counter registers instead of state expansion (applies to -set/-rules, hot reloads and tenant rule sets)")
	flag.Parse()

	policy, err := engine.ParseReloadPolicy(*reloadPolicy)
	if err != nil {
		return exitError, err
	}
	if buildLayout, err = dfa.ParseLayout(*layoutFlag); err != nil {
		return exitError, err
	}
	buildCounters = *countersFlag
	var memLimit int64
	if *maxMemory != "" {
		if memLimit, err = parseBytes(*maxMemory); err != nil {
			return exitError, fmt.Errorf("-max-memory: %w", err)
		}
	}
	m, sources, err := loadEngine(*engineFile, *set, *rulesFile)
	if err != nil {
		return exitError, err
	}
	// The same validation gate a hot reload passes through: a daemon must
	// not start serving on an image it would refuse to swap in.
	if err := m.SelfCheck(); err != nil {
		return exitError, err
	}

	// Resolve the input set. -pcap joins the -source list when it was
	// given explicitly, and stands alone (classic invocation, default
	// stdin) when no -source flag appeared — a daemon started purely with
	// socket sources must not also sit on stdin.
	pcapSet := len(srcSpecs) == 0
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "pcap" {
			pcapSet = true
		}
	})
	var srcs []parsedSource
	if pcapSet {
		s, err := input.ExpandPcaps(*pcapPath)
		if err != nil {
			return exitError, err
		}
		for _, src := range s {
			srcs = append(srcs, parsedSource{src: src})
		}
	}
	for _, spec := range srcSpecs {
		s, err := parseSource(spec)
		if err != nil {
			return exitError, err
		}
		srcs = append(srcs, s...)
	}

	// cur is the serving pattern set; a hot reload swaps it. Matches in
	// flight on an older generation still print against the current
	// sources (cosmetic: rule text may lag the automaton that matched).
	var cur atomic.Pointer[loadedRules]
	cur.Store(&loadedRules{m: m, sources: sources})

	// Matches arrive concurrently from shard goroutines; serialize the
	// report lines. treg is assigned before the engine starts (and is nil
	// in a single-tenant daemon); tenant matches resolve their rule text
	// against the tenant's own set and carry a [tenant] prefix, while
	// default-set lines keep their historic format byte for byte.
	var treg *tenant.Registry
	var mu sync.Mutex
	onMatch := func(mt engine.Match) {
		if *quiet {
			return
		}
		src, tenantID := "", ""
		if mt.Flow.Tenant != 0 && treg != nil {
			if t := treg.Lookup(mt.Flow.Tenant); t != nil {
				tenantID = t.ID()
				if ts := t.Sources(); mt.ID >= 1 && int(mt.ID) <= len(ts) {
					src = ts[mt.ID-1]
				}
			}
		} else if lr := cur.Load(); mt.ID >= 1 && int(mt.ID) <= len(lr.sources) {
			src = lr.sources[mt.ID-1]
		}
		mu.Lock()
		if tenantID != "" {
			fmt.Printf("[%s] %s offset %d: rule %d (%s)\n", tenantID, mt.Flow, mt.Pos, mt.ID, src)
		} else {
			fmt.Printf("%s offset %d: rule %d (%s)\n", mt.Flow, mt.Pos, mt.ID, src)
		}
		mu.Unlock()
	}

	// The daemon is always instrumented: the registry drives the -stats
	// ticker, and -admin additionally exposes it over HTTP.
	start := time.Now()
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventRing(*eventsCap)
	telemetry.RegisterRuntimeMetrics(reg, start)

	registerBuildMetrics(reg, func() core.BuildStats { return cur.Load().m.Stats() })

	// The memory governor aggregates every payload-buffering component
	// against -max-memory: the arena (bytes out on lease), the engine's
	// flow buffers and queued unleased payload. Sources pause leasing
	// near the ceiling, and the degradation ladder sees the same pressure.
	var gov *guard.Governor
	if memLimit > 0 {
		gov = guard.NewGovernor(guard.GovernorConfig{Limit: memLimit})
	}

	// Multi-tenant serving: the registry is created before the engine (the
	// engine's dispatch gate consults it) and bound after (tenant swaps
	// ride the engine's command machinery) — then the -tenant specs
	// install each tenant's first generation.
	var tenantCIDRs []tenant.CIDRRule
	var tenantInstalls []tenantInstall
	if len(tenSpecs) > 0 {
		treg = tenant.NewRegistry(tenant.Config{Metrics: reg, Governor: gov, EventsCap: *eventsCap})
		for _, spec := range tenSpecs {
			ti, err := parseTenantSpec(spec)
			if err != nil {
				return exitError, err
			}
			tenantInstalls = append(tenantInstalls, ti)
			tenantCIDRs = append(tenantCIDRs, ti.cidrs...)
		}
	}

	cfg := engine.Config{
		Shards:        *shards,
		QueueDepth:    *queue,
		DropWhenFull:  *drop,
		BatchFlows:    *batchFlows,
		Flow:          flow.Config{MaxFlows: *maxFlows},
		IdleAfter:     *idle,
		CrashBudget:   *crashBudget,
		SoftWatermark: *softMark,
		HardWatermark: *hardMark,
		StallDeadline: *stallDeadline,
		Metrics:       reg,
		Events:        events,
		Tenants:       treg,
	}
	if gov != nil {
		cfg.MemPressure = gov.Pressure
	}
	e := engine.New(cfg, func() flow.Runner { return m.NewRunner() }, onMatch)
	if treg != nil {
		treg.Bind(e)
		for _, ti := range tenantInstalls {
			if _, _, err := treg.Put(ti.id, ti.spec); err != nil {
				e.Close()
				return exitError, fmt.Errorf("-tenant %s: %w", ti.id, err)
			}
		}
		treg.SetCIDRs(tenantCIDRs)
	}
	arena := &input.Arena{}
	if gov != nil {
		gov.Register("arena", arena.BytesLeased)
		gov.Register("engine", e.MemoryUsage)
		gov.RegisterMetrics(reg) // after registration: full per-component series
	}

	rl := &reloader{
		engineFile: *engineFile,
		set:        *set,
		rulesFile:  *rulesFile,
		policy:     policy,
		e:          e,
		cur:        &cur,
	}
	reg.CounterFunc("mfa_reload_success_total",
		"Pattern hot reloads that validated and swapped in a new generation.",
		func() float64 { return float64(rl.ok.Load()) })
	reg.CounterFunc("mfa_reload_failure_total",
		"Pattern hot reloads rejected (load, compile or self-check failure); the running generation was untouched.",
		func() float64 { return float64(rl.fail.Load()) })

	// SIGHUP triggers the same validated reload as POST /reload; a
	// rejected reload only logs — the running generation keeps serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if _, err := rl.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "mfaserve: SIGHUP reload: %v\n", err)
			}
		}
	}()

	// The input pipeline: every source runs under one supervisor feeding
	// the engine, with leased payload buffers the engine recycles after
	// each scan. Strict-mode policy lives here now — the first malformed
	// frame or record anywhere surfaces as a *input.StrictError.
	supCfg := input.Config{
		Sink:       e,
		Strict:     *strict,
		QueueDepth: *sourceQueue,
		Arena:      arena,
		Governor:   gov,
		Metrics:    reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mfaserve: "+format+"\n", args...)
		},
	}
	if treg != nil {
		supCfg.Tagger = treg.Tag
	}
	sup := input.NewSupervisor(supCfg)
	for _, ps := range srcs {
		opts := input.SourceOptions{RateBytesPerSec: ps.rate}
		if ps.tenantID != "" {
			// A per-source binding needs the tenant's dispatch index, so
			// the tenant must exist at startup (declared via -tenant).
			if treg == nil {
				e.Close()
				return exitError, fmt.Errorf("-source ?tenant=%s: no -tenant flags declared", ps.tenantID)
			}
			t := treg.ByID(ps.tenantID)
			if t == nil {
				e.Close()
				return exitError, fmt.Errorf("-source ?tenant=%s: unknown tenant (declare it with -tenant)", ps.tenantID)
			}
			opts.Tenant = t.Index()
		}
		sup.AddOptions(ps.src, opts)
	}

	var admin *telemetry.Server
	if *adminAddr != "" {
		a := &telemetry.Admin{
			Registry: reg,
			Events:   events,
			// The health rule IS the exit-code-3 rule: a supervisor
			// watching /healthz and one watching the exit status must
			// agree on what "unhealthy" means.
			Health: func() error {
				if n := e.Stats().UnhealthyShards; n > 0 {
					return fmt.Errorf("%d shard(s) unhealthy", n)
				}
				return nil
			},
			// Degraded-but-serving: open circuit breakers and recent
			// watchdog recoveries keep /healthz at 200 (the daemon is
			// self-healing, a load balancer must not evict it) but the
			// body says so. The 503 predicate above is unchanged.
			Degraded: func() string {
				var reasons []string
				if n := sup.OpenBreakers(); n > 0 {
					reasons = append(reasons, fmt.Sprintf("%d source circuit breaker(s) open", n))
				}
				if lr := e.LastStallRecovery(); !lr.IsZero() && time.Since(lr) < time.Minute {
					reasons = append(reasons, fmt.Sprintf("scan stall recovered %s ago", time.Since(lr).Round(time.Second)))
				}
				return strings.Join(reasons, "; ")
			},
			// /statsz reports the serving state end to end: per-source
			// input accounting (including breaker state), arena lease
			// counters, the memory governor (when -max-memory is set),
			// the live engine counters, and the static build shape
			// (table layout, class count, image split) of the loaded MFA.
			Statsz: func() any {
				var gst *guard.GovernorStats
				if gov != nil {
					s := gov.Stats()
					gst = &s
				}
				var tst []tenant.Stats
				if treg != nil {
					tst = treg.List()
				}
				return struct {
					Inputs   []input.SourceStats
					Arena    input.ArenaStats
					Governor *guard.GovernorStats `json:",omitempty"`
					Engine   engine.Stats
					Tenants  []tenant.Stats `json:",omitempty"`
					Build    core.BuildStats
				}{sup.Stats(), sup.Arena().Stats(), gst, e.Stats(), tst, cur.Load().m.Stats()}
			},
			Reload: rl.Reload,
		}
		if treg != nil {
			a.Tenants = treg.AdminHandler(compileRules)
		}
		var err error
		if admin, err = a.Start(*adminAddr); err != nil {
			e.Close()
			return exitError, err
		}
		fmt.Fprintf(os.Stderr, "mfaserve: admin surface on http://%s\n", admin.Addr())
	}

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go progressLoop(reg, *statsEvery, stop)
	}

	// SIGINT/SIGTERM stop the pipeline gracefully: sources observe the
	// cancellation and return, the supervisor drains, then the engine
	// drains under -drain-timeout like any other shutdown.
	ctx, cancelSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancelSignals()

	scanStart := time.Now()
	scanErr := sup.Run(ctx)
	malformed := sup.Malformed()

	closeCtx := context.Background()
	if *drainTimeout > 0 {
		var cancel context.CancelFunc
		closeCtx, cancel = context.WithTimeout(closeCtx, *drainTimeout)
		defer cancel()
	}
	closeErr := e.CloseContext(closeCtx)
	close(stop)
	elapsed := time.Since(scanStart)
	if admin != nil {
		// The admin surface drains under the same bound as the engine:
		// in-flight scrapes finish, long-poll pprof profiles are cut off
		// at the deadline (5s when no -drain-timeout was given).
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if *drainTimeout > 0 {
			cancel()
			shutCtx, cancel = context.WithTimeout(context.Background(), *drainTimeout)
		}
		if err := admin.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "mfaserve: admin shutdown: %v\n", err)
		}
		cancel()
	}

	st := e.Stats()
	inputReport(os.Stdout, sup.Stats(), sup.Arena().Stats())
	report(os.Stdout, st, elapsed)
	healthLine(os.Stdout, st, malformed)

	var strictErr *input.StrictError
	switch {
	case errors.As(scanErr, &strictErr):
		return exitStrict, scanErr
	case scanErr != nil:
		return exitError, scanErr
	case closeErr != nil:
		return exitError, closeErr
	case st.UnhealthyShards > 0:
		return exitUnhealthy, fmt.Errorf("%d shard(s) ended unhealthy", st.UnhealthyShards)
	}
	// A source abandoned as failed (bad path, permanent error, exhausted
	// restart budget) is an operational error even though the rest of the
	// pipeline kept serving — the classic single-capture invocation keeps
	// its open-failure exit status.
	for _, row := range sup.Stats() {
		if row.State == "failed" {
			return exitError, fmt.Errorf("source %s failed: %s", row.Name, row.LastError)
		}
	}
	return exitOK, nil
}

// parseBytes parses a byte size with an optional K/M/G suffix (powers
// of two, case-insensitive): "512K", "256M", "1G", or a plain number.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("want a positive size like 268435456, 256M or 1G")
	}
	return n * mult, nil
}

// parsedSource is one registered source plus its ingest options from
// the spec's query suffix (the tenant id resolves to an index only
// after the registry is populated, so it rides along as a name).
type parsedSource struct {
	src      input.Source
	tenantID string
	rate     int64
}

// parseSource turns one -source spec into sources. A pcap glob expands
// to one source per file, scanned in parallel. A URL-style query suffix
// carries per-source options: ?tenant=ID, ?rate=100M, ?seq (udp only).
func parseSource(spec string) ([]parsedSource, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok || rest == "" {
		return nil, fmt.Errorf("-source %q: want kind:arg (pcap:PATH, spool:DIR, tcp:ADDR, udp:ADDR, afpacket:IFACE)", spec)
	}
	rest, query, hasQuery := strings.Cut(rest, "?")
	var ps parsedSource
	seq := false
	if hasQuery {
		q, err := url.ParseQuery(query)
		if err != nil {
			return nil, fmt.Errorf("-source %q: bad options: %w", spec, err)
		}
		for k := range q {
			switch k {
			case "tenant":
				ps.tenantID = q.Get("tenant")
			case "rate":
				r, err := parseBytes(q.Get("rate"))
				if err != nil {
					return nil, fmt.Errorf("-source %q: rate: %w", spec, err)
				}
				ps.rate = r
			case "seq":
				if kind != "udp" {
					return nil, fmt.Errorf("-source %q: ?seq applies to udp sources only", spec)
				}
				seq = true
			default:
				return nil, fmt.Errorf("-source %q: unknown option %q (tenant, rate, seq)", spec, k)
			}
		}
	}
	if rest == "" {
		return nil, fmt.Errorf("-source %q: empty address", spec)
	}
	var srcs []input.Source
	switch kind {
	case "pcap":
		var err error
		if srcs, err = input.ExpandPcaps(rest); err != nil {
			return nil, err
		}
	case "spool":
		srcs = []input.Source{input.NewSpool(rest)}
	case "tcp":
		srcs = []input.Source{input.NewTCPListener(rest)}
	case "udp":
		u := input.NewUDPListener(rest)
		u.Seq = seq
		srcs = []input.Source{u}
	case "afpacket":
		srcs = []input.Source{input.NewAFPacket(rest)}
	default:
		return nil, fmt.Errorf("-source %q: unknown kind %q (pcap, spool, tcp, udp, afpacket)", spec, kind)
	}
	out := make([]parsedSource, len(srcs))
	for i, s := range srcs {
		out[i] = parsedSource{src: s, tenantID: ps.tenantID, rate: ps.rate}
	}
	return out, nil
}

// tenantInstall is one parsed -tenant flag, ready to Put once the
// registry is bound to the engine.
type tenantInstall struct {
	id    string
	spec  tenant.PutSpec
	cidrs []tenant.CIDRRule
}

// parseTenantSpec parses and compiles one -tenant flag:
// 'id=RULES[,cidr=CIDR][,max-flows=N][,max-buffered=SIZE]'. RULES is a
// rules file path, or set:NAME for a built-in set. The rule set is
// compiled and self-checked here, so a bad tenant spec fails startup
// the same way a bad -rules file does.
func parseTenantSpec(spec string) (tenantInstall, error) {
	var ti tenantInstall
	fields := strings.Split(spec, ",")
	id, rulesSrc, ok := strings.Cut(fields[0], "=")
	if !ok || id == "" || rulesSrc == "" {
		return ti, fmt.Errorf("-tenant %q: want id=RULES[,options]", spec)
	}
	ti.id = id
	var body []byte
	if name, isSet := strings.CutPrefix(rulesSrc, "set:"); isSet {
		prules, err := patterns.Load(name)
		if err != nil {
			return ti, fmt.Errorf("-tenant %s: %w", id, err)
		}
		var b strings.Builder
		for _, r := range prules {
			b.WriteString(r.Source)
			b.WriteByte('\n')
		}
		body = []byte(b.String())
	} else {
		var err error
		if body, err = os.ReadFile(rulesSrc); err != nil {
			return ti, fmt.Errorf("-tenant %s: %w", id, err)
		}
	}
	ti.spec.Rules = body
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return ti, fmt.Errorf("-tenant %s: bad option %q", id, f)
		}
		switch k {
		case "cidr":
			rule, err := tenant.ParseCIDRRule(v + "=" + id)
			if err != nil {
				return ti, fmt.Errorf("-tenant %s: %w", id, err)
			}
			ti.cidrs = append(ti.cidrs, rule)
		case "max-flows":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return ti, fmt.Errorf("-tenant %s: bad max-flows %q", id, v)
			}
			ti.spec.Quota.MaxFlows = n
		case "max-buffered":
			n, err := parseBytes(v)
			if err != nil {
				return ti, fmt.Errorf("-tenant %s: max-buffered: %w", id, err)
			}
			ti.spec.Quota.MaxBufferedBytes = n
		default:
			return ti, fmt.Errorf("-tenant %s: unknown option %q (cidr, max-flows, max-buffered)", id, k)
		}
	}
	var err error
	if ti.spec.NewRunner, ti.spec.Sources, err = compileRules(body); err != nil {
		return ti, fmt.Errorf("-tenant %s: %w", id, err)
	}
	return ti, nil
}

// buildLayout is the transition-table layout every compile in this
// process uses (-layout, parsed once at startup; zero value is auto).
// Engine images loaded with -engine keep the layout they were built
// with.
var buildLayout dfa.Layout

// buildCounters mirrors buildLayout for the counter-register extension
// (-counters): every compile in this process — startup set, hot reloads,
// tenant rule sets — shares the same bounded-repeat encoding.
var buildCounters bool

func buildOptions() core.Options {
	opts := core.Options{DFA: dfa.Options{Layout: buildLayout}}
	opts.Splitter.EnableCounters = buildCounters
	return opts
}

// compileRules is the tenant rule-set gate: parse the rule text, compile
// it, and self-check the automaton — exactly the pipeline POST /reload
// runs for the default set. It serves both -tenant startup specs and
// PUT /tenants/<id>/rules (as the registry's tenant.Compiler).
func compileRules(body []byte) (func() flow.Runner, []string, error) {
	var rules []core.Rule
	var sources []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := regexparse.ParsePCRE(line)
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, core.Rule{Pattern: p, ID: int32(len(rules) + 1)})
		sources = append(sources, line)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(rules) == 0 {
		return nil, nil, fmt.Errorf("no patterns")
	}
	m, err := core.Compile(rules, buildOptions())
	if err != nil {
		return nil, nil, err
	}
	if err := m.SelfCheck(); err != nil {
		return nil, nil, err
	}
	return func() flow.Runner { return m.NewRunner() }, sources, nil
}

// progressLoop prints one stats line per tick until stop closes. The
// line renders from a telemetry snapshot — the same numbers /metrics
// serves — so the ticker and a scraper can never tell different
// stories; the match rate is the delta between consecutive snapshots.
func progressLoop(reg *telemetry.Registry, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	lastMatches := 0.0
	lastTick := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			snap := reg.Snapshot()
			now := time.Now()
			matches := snap.Value("mfa_engine_matches_total")
			rate := (matches - lastMatches) / now.Sub(lastTick).Seconds()
			lastMatches, lastTick = matches, now
			tier := engine.Tier(int32(snap.Value("mfa_engine_tier")))
			fmt.Fprintf(os.Stderr,
				"mfaserve: pkts=%.0f bytes=%.0f flows=%.0f/%.0f matches=%.0f (%.1f/s) queued=%.0f drops=%.0f tier=%s poisoned=%.0f\n",
				snap.Value("mfa_engine_packets_total"),
				snap.Value("mfa_engine_payload_bytes_total"),
				snap.Value("mfa_reasm_live_flows"),
				snap.Value("mfa_engine_flows_total"),
				matches, rate,
				snap.Value("mfa_engine_queue_depth"),
				snap.Value("mfa_engine_queue_drops_total")+snap.Value("mfa_engine_hard_drops_total"),
				tier,
				snap.Value("mfa_engine_poisoned_flows_total"))
		}
	}
}

// loadedRules is the pattern set currently serving: the automaton plus
// the source text its rule ids index. Swapped as one unit by a reload so
// a match report never pairs an id from one set with text from another.
type loadedRules struct {
	m       *core.MFA
	sources []string
}

// reloader re-runs the daemon's own load path against the original
// -engine/-set/-rules argument and, when the candidate survives the
// validation gate, swaps it into the engine as a new generation. The
// gate runs entirely before the swap: a bad rules file (or a truncated
// engine image, or an automaton that fails its self-check scan) is
// rejected with the running generation untouched.
type reloader struct {
	mu         sync.Mutex // serializes SIGHUP against POST /reload
	engineFile string
	set        string
	rulesFile  string
	policy     engine.ReloadPolicy
	e          *engine.Engine
	cur        *atomic.Pointer[loadedRules]
	ok, fail   atomic.Int64
}

func (r *reloader) Reload() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, sources, err := loadEngine(r.engineFile, r.set, r.rulesFile)
	if err == nil {
		err = m.SelfCheck()
	}
	if err != nil {
		r.fail.Add(1)
		return 0, fmt.Errorf("reload rejected, generation %d keeps serving: %w", r.e.Generation(), err)
	}
	gen, err := r.e.Reload(func() flow.Runner { return m.NewRunner() }, r.policy)
	if err != nil {
		r.fail.Add(1)
		return 0, err
	}
	r.cur.Store(&loadedRules{m: m, sources: sources})
	r.ok.Add(1)
	fmt.Fprintf(os.Stderr, "mfaserve: reloaded %d rules as generation %d (policy %s)\n",
		len(sources), gen, r.policy)
	return gen, nil
}

// registerBuildMetrics exposes the static shape of the serving automaton:
// what the scan loop is actually walking (table layout, byte-class count,
// table bytes) and the image split. The values are callbacks over the
// current pattern set, so a hot reload is reflected on the next scrape.
func registerBuildMetrics(reg *telemetry.Registry, cur func() core.BuildStats) {
	g := func(name, help string, v func(core.BuildStats) int) {
		reg.GaugeFunc(name, help, func() float64 { return float64(v(cur())) })
	}
	g("mfa_build_dfa_states", "states in the character DFA", func(st core.BuildStats) int { return st.DFAStates })
	g("mfa_build_dfa_table_bytes", "transition-table image bytes in its serving layout (classed includes the class map)", func(st core.BuildStats) int { return st.DFATableBytes })
	g("mfa_build_dfa_classes", "byte equivalence classes of the transition table (256 = flat)", func(st core.BuildStats) int { return st.DFAClasses })
	g("mfa_build_image_bytes", "total static memory image (DFA + filter program)", func(st core.BuildStats) int { return st.MemoryImageBytes() })
	g("mfa_build_mem_bits", "per-flow filter memory width w", func(st core.BuildStats) int { return st.MemBits })
	g("mfa_build_counters", "filter counter registers compiled from bounded repeats", func(st core.BuildStats) int { return st.Counters })
	// Info-style metric: the layout name rides in the label, value is 1
	// on the serving layout's series. All layouts are registered so the
	// series set is stable across reloads that change layout.
	for _, layout := range []string{"flat", "classed", "classed2"} {
		layout := layout
		reg.GaugeFunc("mfa_build_dfa_layout_info",
			"transition-table layout of the serving engine (1 on the active layout's series)",
			func() float64 {
				if cur().DFALayout == layout {
					return 1
				}
				return 0
			},
			telemetry.L("layout", layout))
	}
}

// inputReport renders one accounting row per source plus the arena's
// lease balance. The per-source segment and byte counters sum to the
// engine's packet and payload totals: the pump counts only what the sink
// accepted.
func inputReport(w io.Writer, rows []input.SourceStats, arena input.ArenaStats) {
	for _, row := range rows {
		fmt.Fprintf(w, "source %s: %s, %d segments, %d payload bytes, %d skipped, %d malformed, %d restarts",
			row.Name, row.State, row.Segments, row.PayloadBytes, row.SkippedFrames, row.Malformed, row.Restarts)
		if row.LastError != "" {
			fmt.Fprintf(w, " (last error: %s)", row.LastError)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "arena: %d leases (%d fresh), %d released\n",
		arena.Leases, arena.Misses, arena.Releases)
}

// report renders the end-of-run stats block.
func report(w io.Writer, st engine.Stats, elapsed time.Duration) {
	mbps := float64(st.PayloadBytes) / (1 << 20) / elapsed.Seconds()
	fmt.Fprintf(w, "scanned %d TCP packets, %d payload bytes in %v (%.1f MB/s, %d shards)\n",
		st.Packets, st.PayloadBytes, elapsed.Round(time.Millisecond), mbps, st.Shards)
	fmt.Fprintf(w, "flows: %d live, %d total, evicted %d (cap) + %d (idle), runners recycled: %d\n",
		st.FlowsLive, st.FlowsTotal, st.EvictedCap, st.EvictedIdle, st.RunnersReused)
	fmt.Fprintf(w, "out-of-order segments: %d, dropped: %d, non-TCP frames: %d, queue drops: %d\n",
		st.OutOfOrder, st.DroppedSegs, st.SkippedFrames, st.QueueDrops)
	fmt.Fprintf(w, "confirmed matches: %d\n", st.Matches)
	fmt.Fprintf(w, "per-shard (packets/matches):")
	for i := range st.ShardPackets {
		fmt.Fprintf(w, " s%d=%d/%d", i, st.ShardPackets[i], st.ShardMatches[i])
	}
	fmt.Fprintln(w)
}

// healthLine emits the structured one-line health summary: everything a
// supervisor needs to judge the run without parsing the prose report.
func healthLine(w io.Writer, st engine.Stats, malformed int64) {
	status := "ok"
	if st.UnhealthyShards > 0 {
		status = "unhealthy"
	} else if st.PoisonedFlows > 0 || st.TierEnters[engine.TierHard] > 0 ||
		st.StallsRecovered > 0 || st.WedgeDrops > 0 {
		status = "degraded"
	}
	fmt.Fprintf(w,
		"health: %s poisoned_flows=%d shard_panics=%d shard_restarts=%d unhealthy_shards=%d "+
			"drops{queue=%d hard=%d poisoned=%d unhealthy=%d wedge=%d reasm=%d} malformed=%d "+
			"stalls{fires=%d recovered=%d wedged_shards=%d} "+
			"tier{now=%s soft_enters=%d hard_enters=%d soft_time=%s hard_time=%s}\n",
		status, st.PoisonedFlows, st.ShardPanics, st.ShardRestarts, st.UnhealthyShards,
		st.QueueDrops, st.HardDrops, st.PoisonedDrops, st.UnhealthyDrops, st.WedgeDrops, st.DroppedSegs, malformed,
		st.StallFires, st.StallsRecovered, st.WedgedShards,
		st.Tier, st.TierEnters[engine.TierSoft], st.TierEnters[engine.TierHard],
		st.TierTime[engine.TierSoft].Round(time.Millisecond),
		st.TierTime[engine.TierHard].Round(time.Millisecond))
}

// loadEngine resolves the three pattern sources: a compiled image, a
// built-in set, or a rules file.
func loadEngine(engineFile, set, rulesFile string) (*core.MFA, []string, error) {
	if engineFile != "" {
		if set != "" || rulesFile != "" {
			return nil, nil, fmt.Errorf("-engine replaces -set/-rules")
		}
		f, err := os.Open(engineFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		br := bufio.NewReaderSize(f, 1<<20)
		sources, err := core.ReadStrings(br)
		if err != nil {
			return nil, nil, err
		}
		m, err := core.ReadMFA(br)
		if err != nil {
			return nil, nil, err
		}
		return m, sources, nil
	}

	var rules []core.Rule
	var sources []string
	switch {
	case set != "" && rulesFile != "":
		return nil, nil, fmt.Errorf("use either -set or -rules, not both")
	case set != "":
		prules, err := patterns.Load(set)
		if err != nil {
			return nil, nil, err
		}
		for _, r := range prules {
			rules = append(rules, core.Rule{Pattern: r.Pattern, ID: r.ID})
			sources = append(sources, r.Source)
		}
	case rulesFile != "":
		f, err := os.Open(rulesFile)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			p, err := regexparse.ParsePCRE(line)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: %w", rulesFile, err)
			}
			rules = append(rules, core.Rule{Pattern: p, ID: int32(len(rules) + 1)})
			sources = append(sources, line)
		}
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		if len(rules) == 0 {
			return nil, nil, fmt.Errorf("%s: no patterns", rulesFile)
		}
	default:
		return nil, nil, fmt.Errorf("one of -engine, -set or -rules is required")
	}
	m, err := core.Compile(rules, buildOptions())
	if err != nil {
		return nil, nil, err
	}
	return m, sources, nil
}
