package matchfilter

import (
	"bytes"
	"fmt"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := MustCompile([]string{
		"attack.*payload",
		`/^get[^\n]*passwd/i`,
		"aa.{5,}bb",
		"plainword",
	}, WithCountingGaps())

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Metadata round-trips.
	if loaded.NumPatterns() != orig.NumPatterns() {
		t.Fatalf("patterns: %d vs %d", loaded.NumPatterns(), orig.NumPatterns())
	}
	for i := 0; i < orig.NumPatterns(); i++ {
		if loaded.Pattern(i) != orig.Pattern(i) {
			t.Fatalf("pattern %d: %q vs %q", i, loaded.Pattern(i), orig.Pattern(i))
		}
	}
	if loaded.Stats().DFAStates != orig.Stats().DFAStates ||
		loaded.Stats().MemoryBits != orig.Stats().MemoryBits {
		t.Fatalf("stats: %+v vs %+v", loaded.Stats(), orig.Stats())
	}

	// Behaviour round-trips, including filter memory, shared gap clears
	// and the counting register.
	inputs := []string{
		"an attack with payload",
		"GET /x/PASSWD http",
		"GET /x\npasswd",
		"aa.....bb", "aa...bb",
		"plainword attack\npayload",
	}
	for _, input := range inputs {
		a := fmt.Sprint(orig.Scan([]byte(input)))
		b := fmt.Sprint(loaded.Scan([]byte(input)))
		if a != b {
			t.Fatalf("input %q: %s vs %s", input, a, b)
		}
	}
}

func TestSaveLoadDeterministic(t *testing.T) {
	e := MustCompile([]string{"ab.*cd", `x[^\n]*y`})
	var a, b bytes.Buffer
	if err := e.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization must be deterministic")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	e := MustCompile([]string{"abcdef"})
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Truncations at various depths.
	for _, cut := range []int{0, 3, 10, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] ^= 0xff
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt header should fail")
	}
	// Garbage.
	if _, err := Load(bytes.NewReader(bytes.Repeat([]byte{0xaa}, 4096))); err == nil {
		t.Error("garbage should fail")
	}
}

func TestLoadedEngineStreams(t *testing.T) {
	e := MustCompile([]string{"needle.*stack"})
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Match
	s := loaded.NewStream(func(m Match) { got = append(got, m) })
	s.Write([]byte("need"))  //nolint:errcheck
	s.Write([]byte("le st")) //nolint:errcheck
	s.Write([]byte("ack"))   //nolint:errcheck
	if len(got) != 1 || got[0].End != 11 {
		t.Fatalf("streamed matches: %v", got)
	}
}
