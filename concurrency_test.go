package matchfilter

// Concurrency tests backing the Engine documentation's "safe for
// concurrent use" claim: one immutable compiled Engine shared by many
// goroutines, each with private Streams, must produce exactly the
// matches of a sequential scan. Run with -race (CI does).

import (
	"fmt"
	"sync"
	"testing"

	"matchfilter/internal/trace"
)

// TestEngineConcurrentStreams shares one Engine across many goroutines,
// each repeatedly scanning its own inputs through fresh and Reset
// Streams, and compares every result to the sequential Scan.
func TestEngineConcurrentStreams(t *testing.T) {
	e := MustCompile([]string{
		"attack.*payload",
		`/^get[^\n]*passwd/i`,
		"evil[^;]*flag",
		"xmrig",
	})

	const goroutines = 8
	const inputsPerG = 6

	// Pre-build every goroutine's inputs and their sequential answers.
	inputs := make([][][]byte, goroutines)
	want := make([][][]Match, goroutines)
	words := []string{"attack", "payload", "get", "passwd", "evil", "flag", "xmrig"}
	for g := 0; g < goroutines; g++ {
		inputs[g] = make([][]byte, inputsPerG)
		want[g] = make([][]Match, inputsPerG)
		for i := 0; i < inputsPerG; i++ {
			data := trace.TextLike(16<<10, int64(g*1000+i), words, 0.01)
			inputs[g][i] = data
			want[g][i] = e.Scan(data)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var got []Match
			s := e.NewStream(func(m Match) { got = append(got, m) })
			for i, data := range inputs[g] {
				got = got[:0]
				s.Reset()
				// Split each write in two to cross a boundary mid-flow.
				half := len(data) / 2
				_, _ = s.Write(data[:half])
				_, _ = s.Write(data[half:])
				if err := sameMatches(want[g][i], got); err != nil {
					errs <- fmt.Errorf("goroutine %d input %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func sameMatches(want, got []Match) error {
	if len(want) != len(got) {
		return fmt.Errorf("got %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("match %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// TestEngineConcurrentScan exercises the one-shot Scan path (which
// allocates a Stream internally) from many goroutines at once.
func TestEngineConcurrentScan(t *testing.T) {
	e := MustCompile([]string{"aa.*zz", "needle"})
	data := trace.TextLike(8<<10, 7, []string{"aa", "zz", "needle"}, 0.02)
	want := e.Scan(data)
	if len(want) == 0 {
		t.Fatal("vacuous input: no matches")
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := sameMatches(want, e.Scan(data)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
