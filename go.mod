module matchfilter

go 1.22
