package matchfilter

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§V), plus the ablations called out in
// DESIGN.md §5. `go test -bench=. -benchmem` regenerates every number;
// cmd/mfabench renders the same experiments as formatted tables.
//
// Construction benchmarks (Table V / Figures 2-3) report states and
// image bytes per engine; throughput benchmarks (Figures 4-5) report
// ns/op with SetBytes so the MB/s column is the paper's axis (the paper's
// CpB = ns/B × 3.0 GHz nominal).

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"matchfilter/internal/bench"
	"matchfilter/internal/core"
	"matchfilter/internal/dfa"
	"matchfilter/internal/nfa"
	"matchfilter/internal/patterns"
	"matchfilter/internal/prefilter"
	"matchfilter/internal/regexparse"
	"matchfilter/internal/trace"
)

// enginesCache builds each pattern set's engines once per bench binary.
var enginesCache sync.Map // set name -> *bench.Engines

func engines(b *testing.B, set string) *bench.Engines {
	b.Helper()
	if e, ok := enginesCache.Load(set); ok {
		return e.(*bench.Engines)
	}
	e, err := bench.Build(set)
	if err != nil {
		b.Fatal(err)
	}
	enginesCache.Store(set, e)
	return e
}

// BenchmarkTableI measures the construction of the paper's R1 vs R2
// example and reports the DFA state counts (paper: 106 vs 23).
func BenchmarkTableI(b *testing.B) {
	sets := map[string][]string{
		"R1": {"vi.*emacs", "bsd.*gnu", "abc.*mm?o.*xyz"},
		"R2": {"emacs", "gnu", "xyz", "vi", "bsd", "abc", "mm?o"},
	}
	for name, sources := range sets {
		b.Run(name, func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				rules := make([]nfa.Rule, len(sources))
				for j, src := range sources {
					p, err := regexparse.Parse(src)
					if err != nil {
						b.Fatal(err)
					}
					rules[j] = nfa.Rule{Pattern: p, MatchID: j + 1}
				}
				n, err := nfa.Build(rules)
				if err != nil {
					b.Fatal(err)
				}
				d, err := dfa.FromNFA(n, dfa.Options{Minimize: true})
				if err != nil {
					b.Fatal(err)
				}
				states = d.NumStates()
			}
			b.ReportMetric(float64(states), "DFAstates")
		})
	}
}

// constructionSets lists the Table V sets cheap enough to reconstruct
// inside a benchmark loop for every engine. The full seven-set matrix
// (including B217p's designed DFA failure) is produced by
// `mfabench -exp table5` and recorded in EXPERIMENTS.md.
var constructionSets = []string{"C7p", "C8", "C10", "S24"}

// BenchmarkTableV_Construction regenerates the Table V state counts: it
// times NFA and MFA construction per set and reports both state columns.
func BenchmarkTableV_Construction(b *testing.B) {
	for _, set := range constructionSets {
		b.Run(set, func(b *testing.B) {
			var nfaQ, mfaQ int
			for i := 0; i < b.N; i++ {
				e, err := bench.Build(set)
				if err != nil {
					b.Fatal(err)
				}
				rn, _ := e.Result(bench.EngineNFA)
				rm, _ := e.Result(bench.EngineMFA)
				nfaQ, mfaQ = rn.States, rm.States
			}
			b.ReportMetric(float64(nfaQ), "NFAstates")
			b.ReportMetric(float64(mfaQ), "MFAstates")
		})
	}
}

// BenchmarkFigure2_ImageSizes reports the per-engine memory images of
// each set (bytes), the Figure 2 matrix.
func BenchmarkFigure2_ImageSizes(b *testing.B) {
	for _, set := range constructionSets {
		e := engines(b, set)
		for _, k := range bench.AllEngines {
			r, ok := e.Result(k)
			if !ok || r.Failed {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", set, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = r.ImageBytes
				}
				b.ReportMetric(float64(r.ImageBytes), "imageBytes")
			})
		}
	}
}

// BenchmarkFigure3_Construction times the all-engine construction of
// each set and reports the per-engine breakdown (milliseconds) from the
// build results — the Figure 3 bars. (B217p, whose DFA failure alone
// takes a minute of budget-bounded search, is exercised by mfabench.)
func BenchmarkFigure3_Construction(b *testing.B) {
	for _, set := range constructionSets {
		b.Run(set, func(b *testing.B) {
			var e *bench.Engines
			for i := 0; i < b.N; i++ {
				var err error
				e, err = bench.Build(set)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, k := range bench.AllEngines {
				if r, ok := e.Result(k); ok && !r.Failed {
					b.ReportMetric(float64(r.BuildTime.Milliseconds()), k.String()+"_ms")
				}
			}
		})
	}
}

// BenchmarkFigure4_Traces measures the full pcap path (decode +
// reassembly + scan) for each engine over representative trace profiles.
// ns/op is per full trace; the B/s rate is payload throughput.
func BenchmarkFigure4_Traces(b *testing.B) {
	profiles := bench.DefaultTraces(0.05)
	keep := map[string]bool{"LL1": true, "C12": true, "N": true}
	for _, set := range []string{"C8", "S24"} {
		e := engines(b, set)
		for _, p := range profiles {
			if !keep[p.Name] {
				continue
			}
			pcapBytes, err := bench.SynthesizeTrace(p, set)
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range bench.AllEngines {
				b.Run(fmt.Sprintf("%s/%s/%s", set, p.Name, k), func(b *testing.B) {
					var payload int64
					for i := 0; i < b.N; i++ {
						res, ok := e.RunTrace(p, pcapBytes, k)
						if !ok {
							b.Skip("engine unavailable for this set")
						}
						payload = res.Bytes
					}
					b.SetBytes(payload)
				})
			}
		}
	}
}

// BenchmarkFigure5_Synthetic measures raw scan throughput on
// difficulty-pM traffic for each engine; SetBytes makes the MB/s column
// the paper's y-axis (inverted).
func BenchmarkFigure5_Synthetic(b *testing.B) {
	const size = 256 << 10
	e := engines(b, "C8")
	walk := e.DFA.DFA()
	for _, pM := range bench.PaperPMs {
		var data []byte
		if pM < 0 {
			data = trace.Random(size, 1)
		} else {
			data = trace.NewGenerator(walk, 1).Generate(nil, size, pM)
		}
		label := "rand"
		if pM >= 0 {
			label = fmt.Sprintf("pM=%.2f", pM)
		}
		for _, k := range bench.AllEngines {
			fn := e.Feeder(k)
			if fn == nil {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", label, k), func(b *testing.B) {
				b.SetBytes(size)
				for i := 0; i < b.N; i++ {
					fn(data)
				}
			})
		}
	}
}

// BenchmarkAblationFilterPlacement isolates DESIGN.md ablation 2: the
// same decomposition run with match-time filtering (MFA), state-entry
// programs (XFA) and transition-time conditions (HFA), on match-heavy
// traffic where the filter path dominates.
func BenchmarkAblationFilterPlacement(b *testing.B) {
	e := engines(b, "C8")
	data := trace.NewGenerator(e.MFA.DFA(), 3).Generate(nil, 256<<10, 0.95)
	for _, k := range []bench.EngineKind{bench.EngineMFA, bench.EngineXFA, bench.EngineHFA} {
		fn := e.Feeder(k)
		b.Run(k.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				fn(data)
			}
		})
	}
}

// BenchmarkAblationDecomposition isolates DESIGN.md ablation 1/4: the
// same patterns compiled with and without decomposition. The metric pair
// to compare is image bytes (reported) and scan throughput.
func BenchmarkAblationDecomposition(b *testing.B) {
	pats := []string{"alpha.*omega", "gamma.*delta", "epsilon.*zeta", "theta.*iota"}
	for _, mode := range []string{"MFA", "plainDFA"} {
		var opts []Option
		if mode == "plainDFA" {
			opts = append(opts, WithoutDecomposition())
		}
		e := MustCompile(pats, opts...)
		data := trace.TextLike(256<<10, 5, []string{"alpha", "omega", "gamma"}, 0.01)
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportMetric(float64(e.Stats().ImageBytes), "imageBytes")
			for i := 0; i < b.N; i++ {
				s := e.NewStream(nil)
				_, _ = s.Write(data)
			}
		})
	}
}

// BenchmarkAblationClassThreshold isolates DESIGN.md ablation 3: an
// almost-dot-star whose gap class admits most of the alphabet floods the
// filter with gap events when force-decomposed, reproducing the §IV-B
// throughput collapse that motivates the 128-byte threshold.
func BenchmarkAblationClassThreshold(b *testing.B) {
	// X = [^bq] (254 bytes): default refuses; forcing it decomposes.
	src := "zq[bq]*bq"
	input := trace.TextLike(256<<10, 9, []string{"zq", "bq"}, 0.005)
	for _, mode := range []string{"refused-default", "forced-split"} {
		var opts []Option
		if mode == "forced-split" {
			opts = append(opts, WithClassSizeThreshold(255))
		}
		e := MustCompile([]string{src}, opts...)
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			b.ReportMetric(float64(e.Stats().Fragments), "fragments")
			for i := 0; i < b.N; i++ {
				s := e.NewStream(nil)
				_, _ = s.Write(input)
			}
		})
	}
}

// BenchmarkAblationTableLayout isolates DESIGN.md ablation 1: identical
// automaton semantics scanned through a flat 4-byte table (DFA) versus
// 16-byte conditional cells (HFA) on benign traffic, measuring the pure
// per-byte layout cost.
func BenchmarkAblationTableLayout(b *testing.B) {
	e := engines(b, "C8")
	data := trace.Random(256<<10, 2)
	for _, k := range []bench.EngineKind{bench.EngineDFA, bench.EngineHFA} {
		fn := e.Feeder(k)
		b.Run(k.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				fn(data)
			}
		})
	}
}

// BenchmarkScanAPI measures the public API overhead end to end.
func BenchmarkScanAPI(b *testing.B) {
	e := MustCompile([]string{"attack.*payload", `/^get[^\n]*passwd/i`, "xmrig"})
	data := trace.TextLike(64<<10, 4, []string{"attack", "payload", "xmrig"}, 0.003)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		s := e.NewStream(nil)
		_, _ = s.Write(data)
	}
}

// BenchmarkEngineParallel measures one shared Engine scanned by
// GOMAXPROCS goroutines concurrently, each owning a private Stream — the
// §III-B flow-multiplexing model (immutable automaton, per-flow (q, m)
// context) that internal/engine's shards rely on. Compare ns/op against
// BenchmarkScanAPI: per-goroutine throughput should hold steady as
// parallelism rises on multi-core hosts.
func BenchmarkEngineParallel(b *testing.B) {
	e := MustCompile([]string{"attack.*payload", `/^get[^\n]*passwd/i`, "xmrig"})
	data := trace.TextLike(64<<10, 4, []string{"attack", "payload", "xmrig"}, 0.003)
	b.SetBytes(int64(len(data)))
	b.RunParallel(func(pb *testing.PB) {
		s := e.NewStream(nil)
		for pb.Next() {
			s.Reset()
			_, _ = s.Write(data)
		}
	})
}

// BenchmarkAblationCountingGap compares the .{n,} counting-gap extension
// (DESIGN.md §8) against bounded-repeat expansion: same semantics, two
// implementations. The imageBytes metric shows the state cost the
// registers avoid.
func BenchmarkAblationCountingGap(b *testing.B) {
	const rule = "hdra.{14,}tailz"
	data := trace.TextLike(256<<10, 8, []string{"hdra", "tailz"}, 0.002)
	for _, mode := range []string{"registers", "expanded"} {
		var opts []Option
		if mode == "registers" {
			opts = append(opts, WithCountingGaps())
		}
		e := MustCompile([]string{rule}, opts...)
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportMetric(float64(e.Stats().ImageBytes), "imageBytes")
			for i := 0; i < b.N; i++ {
				s := e.NewStream(nil)
				_, _ = s.Write(data)
			}
		})
	}
}

// BenchmarkSaveLoad measures engine (de)serialization, the compile-once
// deploy-many path.
func BenchmarkSaveLoad(b *testing.B) {
	e := MustCompile([]string{"attack.*payload", `/^get[^\n]*passwd/i`, "xmrig"})
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := e.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnortPrefilterVsMFA compares the §II-A related-work approach —
// an Aho-Corasick content pre-filter with per-rule verification passes —
// against the single-pass MFA, on clean traffic (pre-filter's best case:
// almost nothing verifies) and content-dense traffic (its worst case:
// many candidate rules each force a full re-scan of the payload).
func BenchmarkSnortPrefilterVsMFA(b *testing.B) {
	sources, err := patterns.Sources("C8")
	if err != nil {
		b.Fatal(err)
	}
	prules := make([]prefilter.Rule, len(sources))
	for i, src := range sources {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			b.Fatal(err)
		}
		prules[i] = prefilter.Rule{Pattern: p, ID: int32(i + 1)}
	}
	pf, err := prefilter.Compile(prules)
	if err != nil {
		b.Fatal(err)
	}
	mfa := engines(b, "C8").MFA

	words, err := patterns.AllWords("C8")
	if err != nil {
		b.Fatal(err)
	}
	traffic := map[string][]byte{
		"clean": trace.TextLike(256<<10, 6, nil, 0),
		"dense": trace.TextLike(256<<10, 6, words, 0.02),
	}
	for _, kind := range []string{"clean", "dense"} {
		data := traffic[kind]
		b.Run("prefilter/"+kind, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				pf.FeedCount(data)
			}
		})
		b.Run("mfa/"+kind, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				mfa.NewRunner().FeedCount(data)
			}
		})
	}
}

// BenchmarkAblationAnchorPrepend quantifies DESIGN.md §7's anchored
// deviation: the paper's §IV-C prepend scheme vs the default head-only
// anchoring, on an S-style anchored rule set. Identical semantics
// (asserted by TestPrependAnchorsEquivalence); the metric of interest is
// imageBytes.
func BenchmarkAblationAnchorPrepend(b *testing.B) {
	sources, err := patterns.Sources("S24")
	if err != nil {
		b.Fatal(err)
	}
	data := trace.TextLike(128<<10, 12, nil, 0)
	for _, mode := range []string{"head-only", "paper-prepend"} {
		rules := make([]core.Rule, len(sources))
		for i, src := range sources {
			p, err := regexparse.ParsePCRE(src)
			if err != nil {
				b.Fatal(err)
			}
			rules[i] = core.Rule{Pattern: p, ID: int32(i + 1)}
		}
		opts := core.Options{}
		opts.Splitter.PrependAnchors = mode == "paper-prepend"
		m, err := core.Compile(rules, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportMetric(float64(m.Stats().MemoryImageBytes()), "imageBytes")
			for i := 0; i < b.N; i++ {
				m.NewRunner().FeedCount(data)
			}
		})
	}
}
