package matchfilter

// Native fuzz targets. Under plain `go test` the seed corpus runs as
// regression tests; `go test -fuzz=FuzzX` explores further.

import (
	"bytes"
	"testing"

	"matchfilter/internal/regexparse"
)

// FuzzParse asserts the parser never panics and that accepted patterns
// re-render to sources that reparse.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"abc", ".*a.*b", `a[^\n]*b`, "^x(y|z)+w{2,5}", `/\d+[a-f]/i`,
		"(", "a{999999}", `\x4`, "[z-a]", "a(?:b)c", "", "|", "[^\xff]",
		".{5,}end", "((((a))))", "a**", `\Q`, "/abc/xyz",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := regexparse.ParsePCRE(src)
		if err != nil {
			return
		}
		rendered := p.String()
		if _, err := regexparse.Parse(rendered); err != nil {
			t.Fatalf("accepted %q but rendering %q does not reparse: %v", src, rendered, err)
		}
	})
}

// FuzzCompileScan asserts that any accepted pattern can be compiled and
// scanned without panicking, and that a match's End offset is in range.
func FuzzCompileScan(f *testing.F) {
	f.Add("ab.*cd", "xx ab yy cd zz")
	f.Add(`a[^\n]*b`, "a...b\na\nb")
	f.Add("^hdr", "hdr payload")
	f.Add(".{3,}x", "....x")
	f.Add("ab.{3,9}cd", "ab....cd")
	f.Add(`ab[^x]{2,20}cd`, "ab....cd ab.x.cd")
	f.Fuzz(func(t *testing.T, pattern, input string) {
		e, err := Compile([]string{pattern},
			WithCountingGaps(), WithBoundedRepeatCounters(), WithMaxStates(2000))
		if err != nil {
			return
		}
		for _, m := range e.Scan([]byte(input)) {
			if m.End < 0 || m.End >= int64(len(input)) {
				t.Fatalf("pattern %q input %q: match end %d out of range", pattern, input, m.End)
			}
			if m.Pattern != 0 {
				t.Fatalf("unexpected pattern index %d", m.Pattern)
			}
		}
	})
}

// FuzzLoad asserts the engine loader never panics and never accepts
// mutations that break scanning.
func FuzzLoad(f *testing.F) {
	e := MustCompile([]string{"ab.*cd", `x[^\n]*y`})
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			if loaded != nil {
				t.Fatal("error with non-nil engine")
			}
			return
		}
		// Whatever loaded must scan without panicking.
		loaded.Scan([]byte("ab cd x y\nab"))
	})
}

// TestFuzzSeedsSanity keeps the deliberate-corruption cases meaningful:
// flipping any single byte of a valid engine file must either fail to
// load or still scan consistently (no panics). A bounded sweep here; the
// fuzzer explores the rest.
func TestFuzzSeedsSanity(t *testing.T) {
	e := MustCompile([]string{"needle"})
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	stride := len(valid)/64 + 1
	for i := 0; i < len(valid); i += stride {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0x5a
		loaded, err := Load(bytes.NewReader(mut))
		if err != nil {
			continue // rejected, as corrupt data usually is
		}
		loaded.Scan([]byte("a needle in a haystack"))
	}
}
