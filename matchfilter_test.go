package matchfilter

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestCompileAndScan(t *testing.T) {
	e, err := Compile([]string{"attack.*payload", "benign"})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Scan([]byte("an attack with a payload, benign too"))
	if len(got) != 2 {
		t.Fatalf("matches: %v", got)
	}
	if got[0].Pattern != 0 || got[1].Pattern != 1 {
		t.Fatalf("pattern indices: %v", got)
	}
	if e.NumPatterns() != 2 || e.Pattern(0) != "attack.*payload" {
		t.Error("pattern accessors")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Error("empty pattern list must fail")
	}
	if _, err := Compile([]string{"a("}); err == nil {
		t.Error("syntax error must fail")
	}
	_, err := Compile([]string{`a\bword`})
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("want ErrUnsupported, got %v", err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad pattern")
		}
	}()
	MustCompile([]string{"("})
}

func TestSlashedCaseInsensitive(t *testing.T) {
	e := MustCompile([]string{`/^get[^\n]*passwd/i`})
	if got := e.Scan([]byte("GET /etc/PASSWD HTTP/1.1\n")); len(got) != 1 {
		t.Fatalf("matches: %v", got)
	}
	if got := e.Scan([]byte("POST GET\npasswd")); len(got) != 0 {
		t.Fatalf("anchored+line-bounded should not match: %v", got)
	}
}

func TestStreamAcrossWrites(t *testing.T) {
	e := MustCompile([]string{"needle.*haystack"})
	var got []Match
	s := e.NewStream(func(m Match) { got = append(got, m) })

	var w io.Writer = s // Stream is an io.Writer
	for _, chunk := range []string{"nee", "dle and then a hay", "stack"} {
		if _, err := io.WriteString(w, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 1 {
		t.Fatalf("matches: %v", got)
	}
	if got[0].End != 25 || s.Pos() != 26 {
		t.Errorf("End=%d Pos=%d", got[0].End, s.Pos())
	}

	s.Reset()
	got = nil
	io.WriteString(s, "haystack") //nolint:errcheck // Write never fails
	if len(got) != 0 {
		t.Fatalf("fresh flow must not match: %v", got)
	}
}

func TestStreamNilHandler(t *testing.T) {
	e := MustCompile([]string{"abc"})
	s := e.NewStream(nil)
	if _, err := s.Write([]byte("abcabc")); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	e := MustCompile([]string{"aa.*bb", "plain"})
	st := e.Stats()
	if st.Patterns != 2 || st.Fragments != 3 || st.Decomposed != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.DFAStates <= 0 || st.MemoryBits != 1 || st.ImageBytes <= 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestWithoutDecomposition(t *testing.T) {
	pats := []string{"aa.*bb", "cc.*dd", "ee.*ff"}
	dec := MustCompile(pats)
	plain := MustCompile(pats, WithoutDecomposition())
	if dec.Stats().DFAStates >= plain.Stats().DFAStates {
		t.Errorf("decomposition should shrink the DFA: %d vs %d",
			dec.Stats().DFAStates, plain.Stats().DFAStates)
	}
	// Same matches either way.
	input := []byte("aa x bb cc y dd ff ee")
	a, b := dec.Scan(input), plain.Scan(input)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("results diverge: %v vs %v", a, b)
	}
}

func TestWithMaxStates(t *testing.T) {
	var pats []string
	for i := 0; i < 10; i++ {
		// Identical prefixes block decomposition, forcing explosion.
		pats = append(pats, fmt.Sprintf("ov%dx.*xov%d", i, i))
	}
	_, err := Compile(pats, WithMaxStates(50))
	if !errors.Is(err, ErrTooManyStates) {
		t.Fatalf("want ErrTooManyStates, got %v", err)
	}
}

func TestWithMinimization(t *testing.T) {
	pats := []string{"ab|ac|ad"}
	min := MustCompile(pats, WithMinimization())
	raw := MustCompile(pats)
	if min.Stats().DFAStates > raw.Stats().DFAStates {
		t.Error("minimization must not grow the DFA")
	}
	input := []byte("ab ac ad ae")
	if fmt.Sprint(min.Scan(input)) != fmt.Sprint(raw.Scan(input)) {
		t.Error("minimization changed semantics")
	}
}

func TestWithClassSizeThreshold(t *testing.T) {
	// [bq]* has X = 254 bytes (everything but b and q); the default
	// threshold refuses, a raised one accepts. The segments are chosen so
	// every other safety condition passes: B uses only gap-class bytes
	// and A ends in one.
	pat := []string{"zq[bq]*bq"}
	def := MustCompile(pat)
	raised := MustCompile(pat, WithClassSizeThreshold(255))
	if def.Stats().Decomposed != 0 {
		t.Errorf("default threshold should refuse: %+v", def.Stats())
	}
	if raised.Stats().Decomposed != 1 {
		t.Errorf("raised threshold should split: %+v", raised.Stats())
	}
	input := []byte("zqbqbq zq bq zqbq")
	if fmt.Sprint(def.Scan(input)) != fmt.Sprint(raised.Scan(input)) {
		t.Error("threshold changed semantics")
	}
}

func TestConcurrentStreams(t *testing.T) {
	// One engine, many flows: contexts must not interfere.
	e := MustCompile([]string{"xx.*yy"})
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- true }()
			var n int
			s := e.NewStream(func(Match) { n++ })
			for i := 0; i < 100; i++ {
				io.WriteString(s, "xx ") //nolint:errcheck
				io.WriteString(s, "yy ") //nolint:errcheck
			}
			if n == 0 {
				t.Errorf("goroutine %d: no matches", g)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestReadmeExample(t *testing.T) {
	engine := MustCompile([]string{
		`attack.*payload`,
		`/^GET[^\n]*passwd/i`,
	})
	var hits []string
	for _, m := range engine.Scan([]byte("GET /etc/passwd attack -> payload")) {
		hits = append(hits, engine.Pattern(m.Pattern))
	}
	if len(hits) != 2 {
		t.Fatalf("hits: %v", hits)
	}
	if !strings.Contains(hits[0], "GET") && !strings.Contains(hits[1], "GET") {
		t.Errorf("hits: %v", hits)
	}
}

func TestWithBoundedRepeatCounters(t *testing.T) {
	// The wide window is uncompilable by expansion under this state
	// budget; counters compile it and match exactly.
	src := []string{"aaa.{60,200}bbb"}
	if _, err := Compile(src, WithMaxStates(2000)); !errors.Is(err, ErrTooManyStates) {
		t.Fatalf("expanded build: want ErrTooManyStates, got %v", err)
	}
	e, err := Compile(src, WithMaxStates(2000), WithBoundedRepeatCounters())
	if err != nil {
		t.Fatal(err)
	}
	hit := "aaa" + strings.Repeat("x", 60) + "bbb"
	if got := e.Scan([]byte(hit)); len(got) != 1 {
		t.Fatalf("in-window input: %v", got)
	}
	miss := "aaa" + strings.Repeat("x", 201) + "bbb"
	if got := e.Scan([]byte(miss)); len(got) != 0 {
		t.Fatalf("out-of-window input: %v", got)
	}
}
